//! Admission control: decided entirely from information available at
//! arrival time, so the same submission batch always sheds the same
//! sessions no matter how fast the pool happens to drain.
//!
//! Shedding from *runtime* queue depths would make the shed set depend on
//! execution timing — two runs of the same fleet could then serve
//! different vehicles, which breaks the determinism contract. Instead two
//! arrival-time budgets are priced in one pass, in arrival order:
//!
//! 1. **The power envelope** (checked first — it trips *before* any queue
//!    watermark): every immediately-started session draws its deployed
//!    design's full Eq. 17 watts, and the fleet owns a fixed budget. An
//!    arrival that no longer fits is shed if `Low`, *deferred* if
//!    `Normal` — it still runs to completion with identical bits, but its
//!    start is pushed behind every immediately-admitted session, so the
//!    concurrent draw stays near the budget. `High` is safety-critical
//!    and is admitted regardless (the envelope is best-effort for it, as
//!    the priority contract promises: never shed, never deferred).
//! 2. **The arrival-backlog watermark**: a `Low` session whose worst-case
//!    arrival backlog (everyone running ahead of it beyond the active-set
//!    capacity) crosses the watermark is shed.
//!
//! Deferred sessions do not add to the priced draw — they start only once
//! the immediately-admitted pool has drained — and shed sessions never
//! consume capacity of either budget. Runtime backpressure (the
//! scheduler's deferred queue) still exists separately and only ever
//! *reorders* work, never drops it.

use crate::session::{Priority, SessionSpec};
use archytas_telemetry::PowerEnvelope;

/// What admission control decided for one submitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The session will run to completion, starting immediately.
    Admit,
    /// The session will run to completion with identical bits, but its
    /// start is deferred behind every immediately-admitted session (only
    /// `Priority::Normal` is eligible; the power envelope is the only
    /// trigger).
    Defer,
    /// The session is rejected up front (only `Priority::Low` is eligible).
    Shed,
}

/// Plans admission for one submission batch, in arrival order.
///
/// Both budgets are pure functions of the spec list, the configuration,
/// and the envelope — never of pool size or execution timing — so every
/// pool size computes the identical decision vector. Ties between equal
/// sessions break by arrival order: the earlier arrival takes the last
/// slot under either budget.
pub fn plan(
    specs: &[SessionSpec],
    max_active: usize,
    shed_watermark: usize,
    envelope: &PowerEnvelope,
) -> Vec<AdmissionDecision> {
    // Sessions that will run (Admit + Defer): the backlog base.
    let mut running_ahead = 0usize;
    // Sessions starting immediately: the draw priced against the envelope.
    let mut powered = 0usize;
    specs
        .iter()
        .map(|spec| {
            let over_envelope = !envelope.fits(powered);
            let backlog = running_ahead.saturating_sub(max_active);
            let decision = match spec.priority {
                Priority::Low if over_envelope || backlog >= shed_watermark => {
                    AdmissionDecision::Shed
                }
                Priority::Normal if over_envelope => AdmissionDecision::Defer,
                _ => AdmissionDecision::Admit,
            };
            match decision {
                AdmissionDecision::Admit => {
                    running_ahead += 1;
                    powered += 1;
                }
                AdmissionDecision::Defer => running_ahead += 1,
                AdmissionDecision::Shed => {}
            }
            decision
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_dataset::kitti_sequences;
    use archytas_hw::{FpgaPlatform, HIGH_PERF};

    fn batch(priorities: &[Priority]) -> Vec<SessionSpec> {
        let seq = kitti_sequences()[0].truncated(1.0);
        priorities
            .iter()
            .enumerate()
            .map(|(i, &p)| SessionSpec::new(format!("s{i}"), seq.clone(), p))
            .collect()
    }

    /// An envelope sized for exactly `n` concurrent HIGH_PERF sessions.
    fn envelope_for(n: usize) -> PowerEnvelope {
        let one = PowerEnvelope::new(1.0, &HIGH_PERF, &FpgaPlatform::zc706()).session_draw_w;
        PowerEnvelope::new(one * n as f64 + 1e-9, &HIGH_PERF, &FpgaPlatform::zc706())
    }

    #[test]
    fn disabled_watermark_admits_everything() {
        let specs = batch(&[Priority::Low; 16]);
        let decisions = plan(&specs, 2, usize::MAX, &PowerEnvelope::unlimited());
        assert!(decisions.iter().all(|d| *d == AdmissionDecision::Admit));
    }

    #[test]
    fn high_and_normal_are_never_shed() {
        let specs = batch(&[
            Priority::High,
            Priority::Normal,
            Priority::High,
            Priority::Normal,
        ]);
        let decisions = plan(&specs, 1, 0, &PowerEnvelope::unlimited());
        assert!(decisions.iter().all(|d| *d == AdmissionDecision::Admit));
    }

    #[test]
    fn low_sessions_shed_once_backlog_crosses_watermark() {
        // Capacity 2, watermark 1: the first Low whose backlog reaches 1
        // (i.e. arriving behind 3 admitted sessions) is shed.
        let specs = batch(&[
            Priority::Normal, // admitted, backlog 0
            Priority::Low,    // admitted, backlog 0
            Priority::Low,    // admitted, backlog 0 (2 ahead, capacity 2)
            Priority::Low,    // shed: backlog 1 >= watermark 1
            Priority::Normal, // admitted regardless
            Priority::Low,    // shed: backlog 2
        ]);
        let decisions = plan(&specs, 2, 1, &PowerEnvelope::unlimited());
        assert_eq!(
            decisions,
            vec![
                AdmissionDecision::Admit,
                AdmissionDecision::Admit,
                AdmissionDecision::Admit,
                AdmissionDecision::Shed,
                AdmissionDecision::Admit,
                AdmissionDecision::Shed,
            ]
        );
    }

    #[test]
    fn shed_sessions_do_not_consume_capacity() {
        // After a shed, the next Low at the same backlog is shed too —
        // shed sessions never increment the admitted count.
        let specs = batch(&[Priority::Low; 6]);
        let decisions = plan(&specs, 3, 1, &PowerEnvelope::unlimited());
        // Backlogs: 0,0,0,0,1(shed),1(shed) — the admitted count stalls at
        // 4, so the sixth session sees the same backlog as the fifth.
        assert_eq!(
            decisions
                .iter()
                .filter(|d| **d == AdmissionDecision::Admit)
                .count(),
            4
        );
        assert_eq!(decisions[4], AdmissionDecision::Shed);
        assert_eq!(decisions[5], AdmissionDecision::Shed);
    }

    #[test]
    fn decisions_depend_only_on_arrival_order() {
        let specs = batch(&[
            Priority::Low,
            Priority::Normal,
            Priority::Low,
            Priority::Low,
            Priority::High,
        ]);
        let a = plan(&specs, 2, 1, &envelope_for(3));
        let b = plan(&specs, 2, 1, &envelope_for(3));
        assert_eq!(a, b);
    }

    #[test]
    fn envelope_sheds_low_and_defers_normal_before_watermarks() {
        // Two-session budget; watermarks wide open — only the envelope can
        // trip, and it must: Low → Shed, Normal → Defer, High → Admit.
        let specs = batch(&[
            Priority::Normal, // powered 0 → Admit
            Priority::High,   // powered 1 → Admit
            Priority::Low,    // powered 2, over budget → Shed
            Priority::Normal, // over budget → Defer
            Priority::High,   // over budget, safety-critical → Admit
            Priority::Normal, // still over → Defer
        ]);
        let decisions = plan(&specs, usize::MAX, usize::MAX, &envelope_for(2));
        assert_eq!(
            decisions,
            vec![
                AdmissionDecision::Admit,
                AdmissionDecision::Admit,
                AdmissionDecision::Shed,
                AdmissionDecision::Defer,
                AdmissionDecision::Admit,
                AdmissionDecision::Defer,
            ]
        );
    }

    #[test]
    fn deferred_sessions_do_not_consume_envelope_budget() {
        // One-session budget: the first Normal admits, every later Normal
        // defers (deferral never frees or consumes the priced draw), and a
        // trailing High admits without being blocked by the deferrals.
        let specs = batch(&[
            Priority::Normal,
            Priority::Normal,
            Priority::Normal,
            Priority::High,
        ]);
        let decisions = plan(&specs, usize::MAX, usize::MAX, &envelope_for(1));
        assert_eq!(
            decisions,
            vec![
                AdmissionDecision::Admit,
                AdmissionDecision::Defer,
                AdmissionDecision::Defer,
                AdmissionDecision::Admit,
            ]
        );
    }

    #[test]
    fn envelope_ties_break_by_arrival_order() {
        // Two identical Lows compete for the last powered slot: the
        // earlier arrival wins, every time.
        let specs = batch(&[Priority::Low, Priority::Low]);
        let decisions = plan(&specs, usize::MAX, usize::MAX, &envelope_for(1));
        assert_eq!(
            decisions,
            vec![AdmissionDecision::Admit, AdmissionDecision::Shed]
        );
    }
}
