//! Admission control: decided entirely from information available at
//! arrival time, so the same submission batch always sheds the same
//! sessions no matter how fast the pool happens to drain.
//!
//! Shedding from *runtime* queue depths would make the shed set depend on
//! execution timing — two runs of the same fleet could then serve
//! different vehicles, which breaks the determinism contract. Instead the
//! controller prices each session's worst-case arrival backlog (everyone
//! submitted ahead of it that exceeds the active-set capacity) and sheds a
//! `Low`-priority session whose backlog crosses the watermark. Runtime
//! backpressure (deferral) is handled separately by the scheduler and only
//! ever *reorders* work, never drops it.

use crate::session::{Priority, SessionSpec};

/// What admission control decided for one submitted session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// The session will run to completion.
    Admit,
    /// The session is rejected up front (only `Priority::Low` is eligible).
    Shed,
}

/// Plans admission for one submission batch, in arrival order.
///
/// Session `i` is shed iff it is `Low` priority and its arrival backlog —
/// the number of sessions admitted ahead of it beyond the `max_active`
/// capacity — is at least `shed_watermark`. With
/// `shed_watermark == usize::MAX` (the default) nothing is ever shed.
pub fn plan(
    specs: &[SessionSpec],
    max_active: usize,
    shed_watermark: usize,
) -> Vec<AdmissionDecision> {
    let mut admitted_ahead = 0usize;
    specs
        .iter()
        .map(|spec| {
            let backlog = admitted_ahead.saturating_sub(max_active);
            let shed = spec.priority == Priority::Low && backlog >= shed_watermark;
            if shed {
                AdmissionDecision::Shed
            } else {
                admitted_ahead += 1;
                AdmissionDecision::Admit
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_dataset::kitti_sequences;

    fn batch(priorities: &[Priority]) -> Vec<SessionSpec> {
        let seq = kitti_sequences()[0].truncated(1.0);
        priorities
            .iter()
            .enumerate()
            .map(|(i, &p)| SessionSpec::new(format!("s{i}"), seq.clone(), p))
            .collect()
    }

    #[test]
    fn disabled_watermark_admits_everything() {
        let specs = batch(&[Priority::Low; 16]);
        let decisions = plan(&specs, 2, usize::MAX);
        assert!(decisions.iter().all(|d| *d == AdmissionDecision::Admit));
    }

    #[test]
    fn high_and_normal_are_never_shed() {
        let specs = batch(&[
            Priority::High,
            Priority::Normal,
            Priority::High,
            Priority::Normal,
        ]);
        let decisions = plan(&specs, 1, 0);
        assert!(decisions.iter().all(|d| *d == AdmissionDecision::Admit));
    }

    #[test]
    fn low_sessions_shed_once_backlog_crosses_watermark() {
        // Capacity 2, watermark 1: the first Low whose backlog reaches 1
        // (i.e. arriving behind 3 admitted sessions) is shed.
        let specs = batch(&[
            Priority::Normal, // admitted, backlog 0
            Priority::Low,    // admitted, backlog 0
            Priority::Low,    // admitted, backlog 0 (2 ahead, capacity 2)
            Priority::Low,    // shed: backlog 1 >= watermark 1
            Priority::Normal, // admitted regardless
            Priority::Low,    // shed: backlog 2
        ]);
        let decisions = plan(&specs, 2, 1);
        assert_eq!(
            decisions,
            vec![
                AdmissionDecision::Admit,
                AdmissionDecision::Admit,
                AdmissionDecision::Admit,
                AdmissionDecision::Shed,
                AdmissionDecision::Admit,
                AdmissionDecision::Shed,
            ]
        );
    }

    #[test]
    fn shed_sessions_do_not_consume_capacity() {
        // After a shed, the next Low at the same backlog is shed too —
        // shed sessions never increment the admitted count.
        let specs = batch(&[Priority::Low; 6]);
        let decisions = plan(&specs, 3, 1);
        // Backlogs: 0,0,0,0,1(shed),1(shed) — the admitted count stalls at
        // 4, so the sixth session sees the same backlog as the fifth.
        assert_eq!(
            decisions
                .iter()
                .filter(|d| **d == AdmissionDecision::Admit)
                .count(),
            4
        );
        assert_eq!(decisions[4], AdmissionDecision::Shed);
        assert_eq!(decisions[5], AdmissionDecision::Shed);
    }

    #[test]
    fn decisions_depend_only_on_arrival_order() {
        let specs = batch(&[
            Priority::Low,
            Priority::Normal,
            Priority::Low,
            Priority::Low,
            Priority::High,
        ]);
        let a = plan(&specs, 2, 1);
        let b = plan(&specs, 2, 1);
        assert_eq!(a, b);
    }
}
