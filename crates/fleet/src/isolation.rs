//! Fault isolation vocabulary: per-session health phases, failure records,
//! step deadlines, and the restart/backoff policy.
//!
//! The state machine a session moves through:
//!
//! ```text
//!          deadline miss                 misses_to_quarantine
//! Nominal ───────────────► SlowSuspect ─────────────────────► Quarantined
//!    ▲                          │                                  │
//!    │   recovery_steps clean   │          restart budget left     │
//!    └──────────────────────────┘     ┌────────────────────────────┘
//!                                     ▼
//!                                Restarting ──► Nominal (first clean step)
//! ```
//!
//! A panic quarantines immediately (no `SlowSuspect` detour). Quarantined
//! sessions with restart budget re-enter through admission control after a
//! capped exponential backoff measured in *scheduler rounds* — a unit that
//! is deterministic and seedable, unlike wall time.

/// Where a session sits in the fault-isolation state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionPhase {
    /// Healthy, meeting its deadlines.
    Nominal,
    /// Missed a step deadline recently; still running, under observation.
    SlowSuspect,
    /// Isolated: panicked or exceeded the deadline-miss budget. No further
    /// steps execute unless the restart ladder revives it.
    Quarantined,
    /// Revived from its last checkpoint, not yet re-proven healthy.
    Restarting,
}

impl std::fmt::Display for SessionPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionPhase::Nominal => write!(f, "nominal"),
            SessionPhase::SlowSuspect => write!(f, "slow-suspect"),
            SessionPhase::Quarantined => write!(f, "quarantined"),
            SessionPhase::Restarting => write!(f, "restarting"),
        }
    }
}

/// Why a session was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureCause {
    /// The step panicked (caught at the session boundary).
    Panic,
    /// The step-deadline watchdog exceeded its consecutive-miss budget.
    DeadlineMiss,
}

impl std::fmt::Display for FailureCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureCause::Panic => write!(f, "panic"),
            FailureCause::DeadlineMiss => write!(f, "deadline-miss"),
        }
    }
}

/// Everything known about a session's (most recent) quarantine event.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// What went wrong.
    pub cause: FailureCause,
    /// Human-readable context: the panic payload string, or the watchdog's
    /// miss accounting.
    pub detail: String,
    /// Frame cursor at failure (index into the session's frame stream).
    pub frame: usize,
    /// Windows completed before the failure.
    pub window: usize,
    /// Restarts already consumed when this failure happened.
    pub restarts_before: usize,
}

/// How step deadlines are measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineClock {
    /// Deterministic frame-count budgets: a window's cost is the number of
    /// scheduler rounds it consumed (1 + stall rounds), and the deadline is
    /// `multiplier` rounds. Both sides of the Eq. 13 comparison scale by
    /// the modelled window latency, so the modelled budget cancels to a
    /// pure round count — bit-reproducible at any pool size. The default,
    /// and the only mode tests use.
    Logical,
    /// Production mode: measured step wall time against
    /// `window_latency_ms × multiplier` from the Eq. 13 model. Timing-
    /// dependent by construction; never part of the determinism contract.
    WallClock,
}

/// Step-deadline policy: the soft deadline is the Eq. 13 modelled window
/// latency times `multiplier`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePolicy {
    /// Deadline as a multiple of the modelled window latency (Logical: the
    /// round budget per window).
    pub multiplier: f64,
    /// Consecutive misses that escalate `SlowSuspect` → `Quarantined`.
    pub misses_to_quarantine: usize,
    /// Clean windows needed to demote `SlowSuspect` → `Nominal`.
    pub recovery_steps: usize,
    /// Logical (deterministic) or wall-clock measurement.
    pub clock: DeadlineClock,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        Self {
            multiplier: 8.0,
            misses_to_quarantine: 2,
            recovery_steps: 2,
            clock: DeadlineClock::Logical,
        }
    }
}

/// Restart ladder: how many revivals a quarantined session gets and how
/// long it backs off between them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Maximum restarts per session (0 disables the ladder entirely —
    /// quarantine is then terminal and no checkpoints are taken).
    pub max_restarts: usize,
    /// Base backoff in scheduler rounds; doubles per restart.
    pub backoff_base_rounds: usize,
    /// Backoff ceiling in scheduler rounds.
    pub backoff_cap_rounds: usize,
    /// Seed of the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        Self {
            max_restarts: 1,
            backoff_base_rounds: 2,
            backoff_cap_rounds: 32,
            seed: 0,
        }
    }
}

impl RestartPolicy {
    /// Backoff before restart number `restart_n` (0-based), in scheduler
    /// rounds: capped exponential plus seeded jitter keyed by the session
    /// name hash, so two sessions quarantined in the same round do not
    /// stampede the admission queue together. Deterministic — no wall
    /// clock, no shared RNG state.
    pub fn backoff_rounds(&self, name_hash: u64, restart_n: usize) -> usize {
        let base = self.backoff_base_rounds.max(1);
        let exp = base
            .checked_shl(restart_n.min(63) as u32)
            .unwrap_or(usize::MAX)
            .min(self.backoff_cap_rounds.max(base));
        let jitter = splitmix64(self.seed ^ name_hash ^ restart_n as u64) as usize % base;
        exp + jitter
    }
}

/// FNV-1a over a byte string — the session-name hash feeding backoff
/// jitter (same construction as `SessionReport::digest`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Verdict of one deadline observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineVerdict {
    /// Within deadline and not under observation.
    Ok,
    /// Missed recently (or just now); keep running under observation.
    Slow,
    /// Consecutive-miss budget exhausted: quarantine.
    Quarantine,
}

/// Streak accounting for the step-deadline watchdog. Lives *inside* the
/// checkpointed session core, so a restart also resets the miss streak the
/// failure accumulated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineWatchdog {
    consecutive_misses: usize,
    clean_streak: usize,
    slow: bool,
}

impl DeadlineWatchdog {
    /// Folds one window's miss/clean observation into the streaks and
    /// returns the escalation verdict.
    pub fn observe(&mut self, missed: bool, policy: &DeadlinePolicy) -> DeadlineVerdict {
        if missed {
            self.consecutive_misses += 1;
            self.clean_streak = 0;
            self.slow = true;
            if self.consecutive_misses >= policy.misses_to_quarantine.max(1) {
                return DeadlineVerdict::Quarantine;
            }
            return DeadlineVerdict::Slow;
        }
        self.consecutive_misses = 0;
        if self.slow {
            self.clean_streak += 1;
            if self.clean_streak >= policy.recovery_steps.max(1) {
                self.slow = false;
                self.clean_streak = 0;
                return DeadlineVerdict::Ok;
            }
            return DeadlineVerdict::Slow;
        }
        DeadlineVerdict::Ok
    }

    /// Miss streak accounting, for failure-record details.
    pub fn consecutive_misses(&self) -> usize {
        self.consecutive_misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watchdog_escalates_and_recovers() {
        let policy = DeadlinePolicy {
            misses_to_quarantine: 2,
            recovery_steps: 2,
            ..DeadlinePolicy::default()
        };
        let mut w = DeadlineWatchdog::default();
        assert_eq!(w.observe(false, &policy), DeadlineVerdict::Ok);
        assert_eq!(w.observe(true, &policy), DeadlineVerdict::Slow);
        // One clean window interrupts the consecutive streak…
        assert_eq!(w.observe(false, &policy), DeadlineVerdict::Slow);
        // …so the next miss is again the first of a streak.
        assert_eq!(w.observe(true, &policy), DeadlineVerdict::Slow);
        assert_eq!(w.observe(true, &policy), DeadlineVerdict::Quarantine);
    }

    #[test]
    fn watchdog_needs_recovery_steps_to_clear() {
        let policy = DeadlinePolicy {
            misses_to_quarantine: 3,
            recovery_steps: 2,
            ..DeadlinePolicy::default()
        };
        let mut w = DeadlineWatchdog::default();
        assert_eq!(w.observe(true, &policy), DeadlineVerdict::Slow);
        assert_eq!(w.observe(false, &policy), DeadlineVerdict::Slow);
        assert_eq!(w.observe(false, &policy), DeadlineVerdict::Ok);
        assert_eq!(w.observe(false, &policy), DeadlineVerdict::Ok);
    }

    #[test]
    fn backoff_is_capped_exponential_with_deterministic_jitter() {
        let p = RestartPolicy {
            max_restarts: 8,
            backoff_base_rounds: 2,
            backoff_cap_rounds: 32,
            seed: 5,
        };
        let h = fnv1a(b"car-3");
        let rounds: Vec<usize> = (0..8).map(|n| p.backoff_rounds(h, n)).collect();
        assert_eq!(
            rounds,
            (0..8).map(|n| p.backoff_rounds(h, n)).collect::<Vec<_>>()
        );
        // Exponential portion: 2, 4, 8, 16, 32, 32, … plus jitter < base.
        for (n, &r) in rounds.iter().enumerate() {
            let exp = (2usize << n).min(32);
            assert!(r >= exp && r < exp + 2, "restart {n}: {r} vs exp {exp}");
        }
        // Different sessions de-synchronize.
        let other: Vec<usize> = (0..8)
            .map(|n| p.backoff_rounds(fnv1a(b"drone-1"), n))
            .collect();
        assert_ne!(rounds, other);
    }
}
