//! Bounded pool of solver scratch workspaces.
//!
//! Sessions own no solver scratch (a grown [`SolverWorkspace`] is ~1 MB —
//! at 1000-session scale it would dominate resident memory). Instead each
//! worker checks a workspace out of this pool for the duration of one
//! quantum and returns it afterwards, so the fleet holds at most one
//! workspace per *worker*, not per *session*. The workspace is pure scratch
//! (every buffer is fully rewritten before it is read), so which workspace a
//! quantum executes with never changes the session's bits — the same
//! argument that lets a single thread-local workspace serve every pipeline
//! in `archytas-dataset`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use archytas_slam::SolverWorkspace;

/// Counters describing one run's scratch traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Workspaces handed out (one per executed quantum).
    pub checkouts: usize,
    /// Workspaces ever allocated — the pool's high-water mark, bounded by
    /// the worker count.
    pub created: usize,
}

/// A bounded free-list of solver workspaces.
///
/// Entries stay boxed: a grown workspace is ~1 MB of inline buffers, and
/// checkout/restore must move a pointer, not memcpy the megabyte.
#[derive(Debug)]
#[allow(clippy::vec_box)]
pub(crate) struct ScratchPool {
    free: Mutex<Vec<Box<SolverWorkspace>>>,
    capacity: usize,
    created: AtomicUsize,
    checkouts: AtomicUsize,
}

impl ScratchPool {
    /// A pool retaining at most `capacity` workspaces (the worker count).
    pub(crate) fn new(capacity: usize) -> Self {
        Self {
            free: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
            created: AtomicUsize::new(0),
            checkouts: AtomicUsize::new(0),
        }
    }

    /// Checks a workspace out, allocating a fresh one only when the
    /// free-list is empty. Steady state allocates nothing: the list refills
    /// on [`ScratchPool::restore`] and traffic is bounded by workers.
    pub(crate) fn checkout(&self) -> Box<SolverWorkspace> {
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        let reused = self.free.lock().unwrap().pop();
        reused.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            Box::new(SolverWorkspace::new())
        })
    }

    /// Returns a workspace to the free-list (dropped if the pool is already
    /// at capacity, which cannot happen in the scheduler's
    /// one-checkout-per-worker discipline).
    pub(crate) fn restore(&self, workspace: Box<SolverWorkspace>) {
        let mut free = self.free.lock().unwrap();
        if free.len() < self.capacity {
            free.push(workspace);
        }
    }

    pub(crate) fn stats(&self) -> ScratchStats {
        ScratchStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            created: self.created.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_and_stays_bounded() {
        let pool = ScratchPool::new(2);
        let a = pool.checkout();
        let b = pool.checkout();
        let c = pool.checkout();
        assert_eq!(pool.stats().created, 3);
        pool.restore(a);
        pool.restore(b);
        pool.restore(c); // over capacity: dropped
        let _a = pool.checkout();
        let _b = pool.checkout();
        let d = pool.checkout(); // free-list empty again
        assert_eq!(pool.stats().created, 4);
        assert_eq!(pool.stats().checkouts, 6);
        pool.restore(d);
    }
}
