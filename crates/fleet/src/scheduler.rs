//! The fleet scheduler: a work-stealing pool that time-slices many
//! sessions over a few worker threads.
//!
//! # Why any schedule produces the same bits
//!
//! A session index lives in **exactly one** place at a time — one worker's
//! local deque, the global injector, the deferred queue, the resurrect
//! queue, or held by the worker currently executing a quantum. Workers
//! therefore never run two quanta of the same session concurrently, and a
//! session's frames are processed strictly in order. Since a quantum is a
//! pure function of the session's own state (sessions share only immutable
//! caches), the stream of per-session results is independent of which
//! worker ran which quantum, of steal order, and of the pool size.
//! Scheduling decides only *interleaving*, and interleaving is
//! unobservable to a session.
//!
//! # Backpressure
//!
//! When the count of runnable sessions reaches `defer_watermark`, workers
//! park `Low`-priority sessions on a deferred queue instead of requeueing
//! them; they resume (FIFO) as soon as the runnable count drops below the
//! resume watermark. Deferral changes completion *order*, never outputs,
//! and a deferred session can only wait while other work exists — the pool
//! never idles with a non-empty deferred queue.
//!
//! # Fault isolation
//!
//! A quantum whose step fails (panic, deadline quarantine — the catch
//! happens *inside* [`SessionState::step_guarded`], under the slot lock,
//! so no `Mutex` is ever poisoned) consults the restart ladder. With
//! budget left, the session parks on the **resurrect queue** until its
//! backoff (measured in executed quanta — the scheduler's deterministic
//! logical clock) expires, then re-enters through the normal admission
//! queue. Without budget, the session is terminally quarantined: its slot
//! is reaped exactly like a completion, so neighbors keep their workers
//! and their bits.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::session::{Priority, SessionReport, SessionState, StepOutcome};

/// Knobs the scheduler needs (a subset of [`crate::FleetConfig`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SchedulerConfig {
    pub threads: usize,
    pub max_active: usize,
    pub frames_per_quantum: usize,
    pub defer_watermark: usize,
}

/// Counters describing how the run was scheduled (timing-dependent;
/// excluded from the determinism contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Quanta a worker stole from another worker's deque.
    pub steals: usize,
    /// Times a `Low` session was parked on the deferred queue.
    pub deferrals: usize,
    /// Quanta executed in total.
    pub quanta: usize,
    /// Sessions parked on the resurrect queue (restart ladder).
    pub resurrections: usize,
    /// Sessions whose *start* was deferred by the power envelope: on first
    /// activation they park on the deferred queue instead of the injector.
    pub envelope_deferrals: usize,
}

/// What one executed quantum decided about its session.
enum QuantumVerdict {
    /// More frames remain; requeue.
    Requeue,
    /// The session completed every frame.
    Done,
    /// The session failed (panic or deadline quarantine).
    Failed,
}

struct Shared {
    /// Session slots, indexed like the input; `None` once finished.
    slots: Vec<Mutex<Option<SessionState>>>,
    reports: Vec<Mutex<Option<SessionReport>>>,
    /// Admitted sessions not yet activated (admission queue, FIFO).
    waiting: Mutex<VecDeque<usize>>,
    /// Per-worker local deques.
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Overflow / activation queue shared by all workers.
    injector: Mutex<VecDeque<usize>>,
    /// Backpressured `Low` sessions.
    deferred: Mutex<VecDeque<usize>>,
    /// Failed sessions awaiting restart: `(slot, ready_at_quanta)`.
    resurrect: Mutex<Vec<(usize, usize)>>,
    /// One-shot per-slot flag: the power envelope deferred this session's
    /// start, so its *first* activation routes to the deferred queue. The
    /// flag clears on use — a later restart re-enters like anyone else.
    defer_at_start: Vec<AtomicBool>,
    /// Sessions currently activated and unfinished.
    active: AtomicUsize,
    /// Admitted sessions not yet finished (workers exit at zero).
    live: AtomicUsize,
    /// Runnable sessions: enqueued in a local deque or the injector.
    runnable: AtomicUsize,
    steals: AtomicUsize,
    deferrals: AtomicUsize,
    quanta: AtomicUsize,
    resurrections: AtomicUsize,
    envelope_deferrals: AtomicUsize,
}

/// Runs every session in `sessions` to completion and returns the reports
/// in slot order plus scheduling counters.
///
/// `defer_at_start[i]` marks slot `i` as envelope-deferred: it joins the
/// admission queue *behind* every immediately-admitted session (in arrival
/// order within each group — a pure function of the decision vector, so
/// identical at every pool size) and its first activation parks on the
/// deferred queue, resuming only once the runnable backlog has drained.
pub(crate) fn run(
    sessions: Vec<Option<SessionState>>,
    defer_at_start: Vec<bool>,
    cfg: &SchedulerConfig,
) -> (Vec<Option<SessionReport>>, SchedulerStats) {
    let threads = cfg.threads.max(1);
    let live_slots: Vec<usize> = sessions
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_some().then_some(i))
        .collect();
    let order: VecDeque<usize> = live_slots
        .iter()
        .filter(|&&i| !defer_at_start[i])
        .chain(live_slots.iter().filter(|&&i| defer_at_start[i]))
        .copied()
        .collect();
    let live = order.len();
    let slot_count = sessions.len();
    let shared = Shared {
        slots: sessions.into_iter().map(Mutex::new).collect(),
        reports: (0..slot_count).map(|_| Mutex::new(None)).collect(),
        waiting: Mutex::new(order),
        defer_at_start: defer_at_start.into_iter().map(AtomicBool::new).collect(),
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        injector: Mutex::new(VecDeque::new()),
        deferred: Mutex::new(VecDeque::new()),
        resurrect: Mutex::new(Vec::new()),
        active: AtomicUsize::new(0),
        live: AtomicUsize::new(live),
        runnable: AtomicUsize::new(0),
        steals: AtomicUsize::new(0),
        deferrals: AtomicUsize::new(0),
        quanta: AtomicUsize::new(0),
        resurrections: AtomicUsize::new(0),
        envelope_deferrals: AtomicUsize::new(0),
    };

    if threads == 1 {
        // Serial fast path: same code, no thread spawn.
        worker(&shared, 0, cfg);
    } else {
        std::thread::scope(|scope| {
            for w in 0..threads {
                let shared = &shared;
                scope.spawn(move || archytas_par::run_as_worker(|| worker(shared, w, cfg)));
            }
        });
    }

    let stats = SchedulerStats {
        steals: shared.steals.load(Ordering::Relaxed),
        deferrals: shared.deferrals.load(Ordering::Relaxed),
        quanta: shared.quanta.load(Ordering::Relaxed),
        resurrections: shared.resurrections.load(Ordering::Relaxed),
        envelope_deferrals: shared.envelope_deferrals.load(Ordering::Relaxed),
    };
    let reports = shared
        .reports
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    (reports, stats)
}

fn worker(sh: &Shared, w: usize, cfg: &SchedulerConfig) {
    while sh.live.load(Ordering::SeqCst) != 0 {
        promote_resurrections(sh);
        admit_up_to_capacity(sh, cfg);
        let Some(i) = acquire(sh, w, cfg) else {
            std::thread::yield_now();
            continue;
        };
        sh.quanta.fetch_add(1, Ordering::Relaxed);
        let mut slot = sh.slots[i].lock().unwrap();
        let state = slot
            .as_mut()
            .expect("a queued session index always has live state");
        let mut verdict = QuantumVerdict::Requeue;
        for _ in 0..cfg.frames_per_quantum.max(1) {
            match state.step_guarded() {
                StepOutcome::Progress => {}
                StepOutcome::Done => {
                    verdict = QuantumVerdict::Done;
                    break;
                }
                // A wedged step consumes the rest of this quantum — one
                // Stalled return costs exactly one scheduler round, the
                // same unit the serial-alone loop charges, so the logical
                // deadline clock agrees between fleet and alone.
                StepOutcome::Stalled => break,
                StepOutcome::Failed => {
                    verdict = QuantumVerdict::Failed;
                    break;
                }
            }
        }
        match verdict {
            QuantumVerdict::Done => {
                let state = slot.take().unwrap();
                drop(slot);
                *sh.reports[i].lock().unwrap() = Some(state.finish());
                sh.active.fetch_sub(1, Ordering::SeqCst);
                sh.live.fetch_sub(1, Ordering::SeqCst);
            }
            QuantumVerdict::Failed => {
                let restart = slot.as_mut().unwrap().try_schedule_restart();
                match restart {
                    Some(backoff) => {
                        // The slot keeps the (checkpoint-restored) state;
                        // only its scheduling claim is released. It will
                        // re-enter through the admission queue once the
                        // backoff expires on the quanta clock.
                        drop(slot);
                        let ready_at = sh.quanta.load(Ordering::Relaxed) + backoff;
                        sh.resurrect.lock().unwrap().push((i, ready_at));
                        sh.resurrections.fetch_add(1, Ordering::Relaxed);
                        sh.active.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        // Terminal quarantine: reaped like a completion so
                        // the pool keeps serving everyone else.
                        let state = slot.take().unwrap();
                        drop(slot);
                        *sh.reports[i].lock().unwrap() = Some(state.finish_quarantined());
                        sh.active.fetch_sub(1, Ordering::SeqCst);
                        sh.live.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            QuantumVerdict::Requeue => {
                let low = slot.as_ref().unwrap().priority() == Priority::Low;
                drop(slot);
                release(sh, w, i, low, cfg);
            }
        }
    }
}

/// Moves restart-ladder sessions whose backoff has expired (on the
/// executed-quanta clock) back onto the admission queue, so a revived
/// session re-enters through the same capacity gate as a new arrival.
///
/// The quanta clock only advances while some session is runnable; if the
/// resurrect queue ever holds the *only* remaining work, the earliest
/// entry is fast-forwarded so the pool cannot idle forever. (Backoff
/// shapes timing, never outputs, so the fast-forward is contract-safe.)
fn promote_resurrections(sh: &Shared) {
    let mut resurrect = sh.resurrect.lock().unwrap();
    if resurrect.is_empty() {
        return;
    }
    let now = sh.quanta.load(Ordering::Relaxed);
    let mut waiting = sh.waiting.lock().unwrap();
    let mut promoted = false;
    resurrect.retain(|&(i, ready_at)| {
        if ready_at <= now {
            waiting.push_back(i);
            promoted = true;
            false
        } else {
            true
        }
    });
    if !promoted
        && waiting.is_empty()
        && sh.runnable.load(Ordering::SeqCst) == 0
        && sh.active.load(Ordering::SeqCst) == 0
    {
        let earliest = resurrect
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(slot, ready_at))| (ready_at, slot))
            .map(|(pos, _)| pos);
        if let Some(pos) = earliest {
            let (i, _) = resurrect.remove(pos);
            waiting.push_back(i);
        }
    }
}

/// Activates waiting sessions while the active set has capacity. `active`
/// is only incremented under the `waiting` lock, so the cap holds.
///
/// An envelope-deferred session activates into the *deferred* queue (its
/// one-shot flag clears here): it consumes an active slot — so completion
/// accounting stays uniform — but is not runnable, and therefore only
/// starts once the runnable backlog drains below the resume watermark.
fn admit_up_to_capacity(sh: &Shared, cfg: &SchedulerConfig) {
    let mut waiting = sh.waiting.lock().unwrap();
    while !waiting.is_empty() && sh.active.load(Ordering::SeqCst) < cfg.max_active.max(1) {
        let i = waiting.pop_front().unwrap();
        sh.active.fetch_add(1, Ordering::SeqCst);
        if sh.defer_at_start[i].swap(false, Ordering::SeqCst) {
            sh.deferred.lock().unwrap().push_back(i);
            sh.envelope_deferrals.fetch_add(1, Ordering::Relaxed);
        } else {
            sh.injector.lock().unwrap().push_back(i);
            sh.runnable.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Takes the next session to run: own deque first, then a steal from a
/// sibling (oldest end), then the injector, then — only when the runnable
/// backlog has drained below the resume watermark — a deferred session.
fn acquire(sh: &Shared, w: usize, cfg: &SchedulerConfig) -> Option<usize> {
    if let Some(i) = sh.locals[w].lock().unwrap().pop_front() {
        sh.runnable.fetch_sub(1, Ordering::SeqCst);
        return Some(i);
    }
    let n = sh.locals.len();
    for k in 1..n {
        let victim = (w + k) % n;
        if let Some(i) = sh.locals[victim].lock().unwrap().pop_back() {
            sh.runnable.fetch_sub(1, Ordering::SeqCst);
            sh.steals.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
    }
    if let Some(i) = sh.injector.lock().unwrap().pop_front() {
        sh.runnable.fetch_sub(1, Ordering::SeqCst);
        return Some(i);
    }
    if sh.runnable.load(Ordering::SeqCst) < resume_watermark(cfg) {
        if let Some(i) = sh.deferred.lock().unwrap().pop_front() {
            return Some(i);
        }
    }
    None
}

/// Requeues an unfinished session: `Low` sessions park on the deferred
/// queue while the runnable backlog is at or above the watermark;
/// everything else goes back on the worker's own deque.
fn release(sh: &Shared, w: usize, i: usize, low: bool, cfg: &SchedulerConfig) {
    if low && sh.runnable.load(Ordering::SeqCst) >= cfg.defer_watermark {
        sh.deferred.lock().unwrap().push_back(i);
        sh.deferrals.fetch_add(1, Ordering::Relaxed);
    } else {
        sh.locals[w].lock().unwrap().push_back(i);
        sh.runnable.fetch_add(1, Ordering::SeqCst);
    }
}

/// Deferred sessions resume once fewer runnable sessions remain than half
/// the defer watermark (at least one, so a deferred-only fleet always
/// makes progress).
fn resume_watermark(cfg: &SchedulerConfig) -> usize {
    (cfg.defer_watermark / 2).max(1)
}
