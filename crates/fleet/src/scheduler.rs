//! The fleet scheduler: a work-stealing pool that time-slices many
//! sessions over a few worker threads.
//!
//! # Why any schedule produces the same bits
//!
//! A session index lives in **exactly one** place at a time — one worker's
//! local deque, the global injector, the deferred queue, or held by the
//! worker currently executing a quantum. Workers therefore never run two
//! quanta of the same session concurrently, and a session's frames are
//! processed strictly in order. Since a quantum is a pure function of the
//! session's own state (sessions share only immutable caches), the stream
//! of per-session results is independent of which worker ran which
//! quantum, of steal order, and of the pool size. Scheduling decides only
//! *interleaving*, and interleaving is unobservable to a session.
//!
//! # Backpressure
//!
//! When the count of runnable sessions reaches `defer_watermark`, workers
//! park `Low`-priority sessions on a deferred queue instead of requeueing
//! them; they resume (FIFO) as soon as the runnable count drops below the
//! resume watermark. Deferral changes completion *order*, never outputs,
//! and a deferred session can only wait while other work exists — the pool
//! never idles with a non-empty deferred queue.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::session::{Priority, SessionReport, SessionState};

/// Knobs the scheduler needs (a subset of [`crate::FleetConfig`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SchedulerConfig {
    pub threads: usize,
    pub max_active: usize,
    pub frames_per_quantum: usize,
    pub defer_watermark: usize,
}

/// Counters describing how the run was scheduled (timing-dependent;
/// excluded from the determinism contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Quanta a worker stole from another worker's deque.
    pub steals: usize,
    /// Times a `Low` session was parked on the deferred queue.
    pub deferrals: usize,
    /// Quanta executed in total.
    pub quanta: usize,
}

struct Shared {
    /// Session slots, indexed like the input; `None` once finished.
    slots: Vec<Mutex<Option<SessionState>>>,
    reports: Vec<Mutex<Option<SessionReport>>>,
    /// Admitted sessions not yet activated (admission queue, FIFO).
    waiting: Mutex<VecDeque<usize>>,
    /// Per-worker local deques.
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Overflow / activation queue shared by all workers.
    injector: Mutex<VecDeque<usize>>,
    /// Backpressured `Low` sessions.
    deferred: Mutex<VecDeque<usize>>,
    /// Sessions currently activated and unfinished.
    active: AtomicUsize,
    /// Admitted sessions not yet finished (workers exit at zero).
    live: AtomicUsize,
    /// Runnable sessions: enqueued in a local deque or the injector.
    runnable: AtomicUsize,
    steals: AtomicUsize,
    deferrals: AtomicUsize,
    quanta: AtomicUsize,
}

/// Runs every session in `sessions` to completion and returns the reports
/// in slot order plus scheduling counters.
pub(crate) fn run(
    sessions: Vec<Option<SessionState>>,
    cfg: &SchedulerConfig,
) -> (Vec<Option<SessionReport>>, SchedulerStats) {
    let threads = cfg.threads.max(1);
    let order: VecDeque<usize> = sessions
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_some().then_some(i))
        .collect();
    let live = order.len();
    let slot_count = sessions.len();
    let shared = Shared {
        slots: sessions.into_iter().map(Mutex::new).collect(),
        reports: (0..slot_count).map(|_| Mutex::new(None)).collect(),
        waiting: Mutex::new(order),
        locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        injector: Mutex::new(VecDeque::new()),
        deferred: Mutex::new(VecDeque::new()),
        active: AtomicUsize::new(0),
        live: AtomicUsize::new(live),
        runnable: AtomicUsize::new(0),
        steals: AtomicUsize::new(0),
        deferrals: AtomicUsize::new(0),
        quanta: AtomicUsize::new(0),
    };

    if threads == 1 {
        // Serial fast path: same code, no thread spawn.
        worker(&shared, 0, cfg);
    } else {
        std::thread::scope(|scope| {
            for w in 0..threads {
                let shared = &shared;
                scope.spawn(move || archytas_par::run_as_worker(|| worker(shared, w, cfg)));
            }
        });
    }

    let stats = SchedulerStats {
        steals: shared.steals.load(Ordering::Relaxed),
        deferrals: shared.deferrals.load(Ordering::Relaxed),
        quanta: shared.quanta.load(Ordering::Relaxed),
    };
    let reports = shared
        .reports
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    (reports, stats)
}

fn worker(sh: &Shared, w: usize, cfg: &SchedulerConfig) {
    while sh.live.load(Ordering::SeqCst) != 0 {
        admit_up_to_capacity(sh, cfg);
        let Some(i) = acquire(sh, w, cfg) else {
            std::thread::yield_now();
            continue;
        };
        sh.quanta.fetch_add(1, Ordering::Relaxed);
        let mut slot = sh.slots[i].lock().unwrap();
        let state = slot
            .as_mut()
            .expect("a queued session index always has live state");
        let mut done = false;
        for _ in 0..cfg.frames_per_quantum.max(1) {
            if state.step_frame() {
                done = true;
                break;
            }
        }
        if done {
            let state = slot.take().unwrap();
            drop(slot);
            *sh.reports[i].lock().unwrap() = Some(state.finish());
            sh.active.fetch_sub(1, Ordering::SeqCst);
            sh.live.fetch_sub(1, Ordering::SeqCst);
        } else {
            let low = state.priority() == Priority::Low;
            drop(slot);
            release(sh, w, i, low, cfg);
        }
    }
}

/// Activates waiting sessions while the active set has capacity. `active`
/// is only incremented under the `waiting` lock, so the cap holds.
fn admit_up_to_capacity(sh: &Shared, cfg: &SchedulerConfig) {
    let mut waiting = sh.waiting.lock().unwrap();
    while !waiting.is_empty() && sh.active.load(Ordering::SeqCst) < cfg.max_active.max(1) {
        let i = waiting.pop_front().unwrap();
        sh.active.fetch_add(1, Ordering::SeqCst);
        sh.injector.lock().unwrap().push_back(i);
        sh.runnable.fetch_add(1, Ordering::SeqCst);
    }
}

/// Takes the next session to run: own deque first, then a steal from a
/// sibling (oldest end), then the injector, then — only when the runnable
/// backlog has drained below the resume watermark — a deferred session.
fn acquire(sh: &Shared, w: usize, cfg: &SchedulerConfig) -> Option<usize> {
    if let Some(i) = sh.locals[w].lock().unwrap().pop_front() {
        sh.runnable.fetch_sub(1, Ordering::SeqCst);
        return Some(i);
    }
    let n = sh.locals.len();
    for k in 1..n {
        let victim = (w + k) % n;
        if let Some(i) = sh.locals[victim].lock().unwrap().pop_back() {
            sh.runnable.fetch_sub(1, Ordering::SeqCst);
            sh.steals.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
    }
    if let Some(i) = sh.injector.lock().unwrap().pop_front() {
        sh.runnable.fetch_sub(1, Ordering::SeqCst);
        return Some(i);
    }
    if sh.runnable.load(Ordering::SeqCst) < resume_watermark(cfg) {
        if let Some(i) = sh.deferred.lock().unwrap().pop_front() {
            return Some(i);
        }
    }
    None
}

/// Requeues an unfinished session: `Low` sessions park on the deferred
/// queue while the runnable backlog is at or above the watermark;
/// everything else goes back on the worker's own deque.
fn release(sh: &Shared, w: usize, i: usize, low: bool, cfg: &SchedulerConfig) {
    if low && sh.runnable.load(Ordering::SeqCst) >= cfg.defer_watermark {
        sh.deferred.lock().unwrap().push_back(i);
        sh.deferrals.fetch_add(1, Ordering::Relaxed);
    } else {
        sh.locals[w].lock().unwrap().push_back(i);
        sh.runnable.fetch_add(1, Ordering::SeqCst);
    }
}

/// Deferred sessions resume once fewer runnable sessions remain than half
/// the defer watermark (at least one, so a deferred-only fleet always
/// makes progress).
fn resume_watermark(cfg: &SchedulerConfig) -> usize {
    (cfg.defer_watermark / 2).max(1)
}
