//! The fleet scheduler: a sharded work-stealing pool that time-slices many
//! sessions over a few worker threads.
//!
//! # Sharding
//!
//! Workers are grouped into **shards** of [`DEFAULT_SHARD_SIZE`] (config
//! overridable). Each shard owns its own activation injector, and a worker
//! looks for work close to home first — its own deque, then its shard —
//! before crossing shards. One global `Mutex<VecDeque>` injector was fine
//! for 8 sessions; at 1000-session scale every activation and every
//! overflow pop would serialize the whole pool on one lock. Sharding keeps
//! the common path (local deque, shard injector) contended only by
//! `shard_size` workers, and steal probes use `try_lock` so a busy victim
//! costs a counter bump, not a convoy. The canonical pop order lives on
//! [`acquire`] — the *only* statement of it; everything else links here.
//!
//! # Why any schedule produces the same bits
//!
//! A session index lives in **exactly one** place at a time — one worker's
//! local deque, a shard injector, the deferred queue, the resurrect queue,
//! or held by the worker currently executing a quantum. Workers therefore
//! never run two quanta of the same session concurrently, and a session's
//! frames are processed strictly in order. Since a quantum is a pure
//! function of the session's own state (sessions share only immutable
//! caches, and solver scratch from the bounded pool is rewritten before it
//! is read), the stream of per-session results is independent of which
//! worker ran which quantum, of steal order, of shard count, and of the
//! pool size. Scheduling decides only *interleaving*, and interleaving is
//! unobservable to a session.
//!
//! # Backpressure
//!
//! When the count of runnable sessions reaches `defer_watermark`, workers
//! park `Low`-priority sessions on a deferred queue instead of requeueing
//! them; they resume (FIFO) as soon as the runnable count drops below the
//! resume watermark. Deferral changes completion *order*, never outputs,
//! and a deferred session can only wait while other work exists — the pool
//! never idles with a non-empty deferred queue.
//!
//! # Churn
//!
//! A session whose spec carries a future `arrival_round` sits in the
//! admission queue until the executed-quanta clock reaches it — the same
//! deterministic logical clock the restart ladder's backoff uses. If every
//! remaining session is parked behind a future logical time, the earliest
//! one is fast-forwarded so the pool cannot idle forever (timing-only,
//! contract-safe).
//!
//! # Fault isolation
//!
//! A quantum whose step fails (panic, deadline quarantine — the catch
//! happens *inside* [`SessionState::step_guarded`], under the slot lock,
//! so no `Mutex` is ever poisoned) consults the restart ladder. With
//! budget left, the session parks on the **resurrect queue** until its
//! backoff expires, then re-enters through the normal admission queue.
//! Without budget, the session is terminally quarantined: its slot is
//! reaped exactly like a completion, so neighbors keep their workers and
//! their bits.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, TryLockError};

use crate::pool::{ScratchPool, ScratchStats};
use crate::session::{Priority, SessionReport, SessionState, StepOutcome};

/// Workers per shard when the config does not pin one (`shard_size == 0`).
/// Four keeps a shard's queues contended by at most four threads while
/// still giving within-shard stealing enough victims to balance load.
pub(crate) const DEFAULT_SHARD_SIZE: usize = 4;

/// Knobs the scheduler needs (a subset of [`crate::FleetConfig`]).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SchedulerConfig {
    pub threads: usize,
    pub max_active: usize,
    pub frames_per_quantum: usize,
    pub defer_watermark: usize,
    /// Workers per shard; `0` selects [`DEFAULT_SHARD_SIZE`].
    pub shard_size: usize,
}

/// Counters describing how the run was scheduled (timing-dependent;
/// excluded from the determinism contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Quanta stolen from another worker's deque (shard + cross-shard).
    pub steals: usize,
    /// Steals from a sibling within the thief's own shard.
    pub shard_steals: usize,
    /// Steals that had to cross a shard boundary (every queue in the
    /// thief's shard was dry).
    pub cross_steals: usize,
    /// Steal/cross-injector probes skipped because the victim's lock was
    /// busy (`try_lock` miss) — the contention the sharding absorbs.
    pub contended_probes: usize,
    /// Times a `Low` session was parked on the deferred queue.
    pub deferrals: usize,
    /// Quanta executed in total.
    pub quanta: usize,
    /// Sessions parked on the resurrect queue (restart ladder).
    pub resurrections: usize,
    /// Sessions whose *start* was deferred by the power envelope: on first
    /// activation they park on the deferred queue instead of an injector.
    pub envelope_deferrals: usize,
    /// Number of injector shards the pool ran with.
    pub shards: usize,
    /// Solver-scratch pool traffic (checkouts / workspaces ever created).
    pub scratch: ScratchStats,
}

/// What one executed quantum decided about its session.
enum QuantumVerdict {
    /// More frames remain; requeue.
    Requeue,
    /// The session completed every frame.
    Done,
    /// The session failed (panic or deadline quarantine).
    Failed,
}

/// One injector shard: the activation/overflow queue shared by the
/// `shard_size` workers of that shard.
struct Shard {
    injector: Mutex<VecDeque<usize>>,
}

struct Shared {
    /// Session slots, indexed like the input; `None` once finished.
    slots: Vec<Mutex<Option<SessionState>>>,
    reports: Vec<Mutex<Option<SessionReport>>>,
    /// Admitted sessions not yet activated (admission queue, FIFO among
    /// the arrival-eligible).
    waiting: Mutex<VecDeque<usize>>,
    /// Per-slot arrival round on the executed-quanta clock; a session is
    /// admission-eligible once the clock reaches it. Atomic so the
    /// anti-livelock fast-forward can promote one without extra locking.
    arrival: Vec<AtomicUsize>,
    /// Per-worker local deques.
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Per-shard activation/overflow injectors.
    shards: Vec<Shard>,
    /// Round-robin cursor distributing activations across shards.
    next_shard: AtomicUsize,
    /// Backpressured `Low` sessions.
    deferred: Mutex<VecDeque<usize>>,
    /// Failed sessions awaiting restart: `(slot, ready_at_quanta)`.
    resurrect: Mutex<Vec<(usize, usize)>>,
    /// One-shot per-slot flag: the power envelope deferred this session's
    /// start, so its *first* activation routes to the deferred queue. The
    /// flag clears on use — a later restart re-enters like anyone else.
    defer_at_start: Vec<AtomicBool>,
    /// Bounded solver-scratch pool; workers check out one workspace per
    /// executed quantum, so residency is one workspace per worker.
    scratch: ScratchPool,
    /// Effective workers per shard (for shard-membership arithmetic).
    shard_size: usize,
    threads: usize,
    /// Sessions currently activated and unfinished.
    active: AtomicUsize,
    /// Admitted sessions not yet finished (workers exit at zero).
    live: AtomicUsize,
    /// Runnable sessions: enqueued in a local deque or an injector.
    runnable: AtomicUsize,
    shard_steals: AtomicUsize,
    cross_steals: AtomicUsize,
    contended_probes: AtomicUsize,
    deferrals: AtomicUsize,
    quanta: AtomicUsize,
    resurrections: AtomicUsize,
    envelope_deferrals: AtomicUsize,
}

impl Shared {
    fn new(
        sessions: Vec<Option<SessionState>>,
        defer_at_start: Vec<bool>,
        arrival: Vec<usize>,
        order: VecDeque<usize>,
        cfg: &SchedulerConfig,
    ) -> Self {
        let threads = cfg.threads.max(1);
        let shard_size = if cfg.shard_size == 0 {
            DEFAULT_SHARD_SIZE
        } else {
            cfg.shard_size
        }
        .min(threads);
        let num_shards = threads.div_ceil(shard_size);
        let live = order.len();
        let slot_count = sessions.len();
        Self {
            slots: sessions.into_iter().map(Mutex::new).collect(),
            reports: (0..slot_count).map(|_| Mutex::new(None)).collect(),
            waiting: Mutex::new(order),
            arrival: arrival.into_iter().map(AtomicUsize::new).collect(),
            defer_at_start: defer_at_start.into_iter().map(AtomicBool::new).collect(),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            shards: (0..num_shards)
                .map(|_| Shard {
                    injector: Mutex::new(VecDeque::new()),
                })
                .collect(),
            next_shard: AtomicUsize::new(0),
            deferred: Mutex::new(VecDeque::new()),
            resurrect: Mutex::new(Vec::new()),
            scratch: ScratchPool::new(threads),
            shard_size,
            threads,
            active: AtomicUsize::new(0),
            live: AtomicUsize::new(live),
            runnable: AtomicUsize::new(0),
            shard_steals: AtomicUsize::new(0),
            cross_steals: AtomicUsize::new(0),
            contended_probes: AtomicUsize::new(0),
            deferrals: AtomicUsize::new(0),
            quanta: AtomicUsize::new(0),
            resurrections: AtomicUsize::new(0),
            envelope_deferrals: AtomicUsize::new(0),
        }
    }

    /// The shard worker `w` belongs to.
    fn shard_of(&self, w: usize) -> usize {
        w / self.shard_size
    }

    /// Worker indices of shard `s`.
    fn shard_members(&self, s: usize) -> std::ops::Range<usize> {
        let first = s * self.shard_size;
        first..((s + 1) * self.shard_size).min(self.threads)
    }
}

/// Runs every session in `sessions` to completion and returns the reports
/// in slot order plus scheduling counters.
///
/// `defer_at_start[i]` marks slot `i` as envelope-deferred: it joins the
/// admission queue *behind* every immediately-admitted session (in arrival
/// order within each group — a pure function of the decision vector, so
/// identical at every pool size) and its first activation parks on the
/// deferred queue, resuming only once the runnable backlog has drained.
/// `arrival[i]` is the executed-quanta round at which slot `i` becomes
/// admission-eligible (`0` = at startup).
pub(crate) fn run(
    sessions: Vec<Option<SessionState>>,
    defer_at_start: Vec<bool>,
    arrival: Vec<usize>,
    cfg: &SchedulerConfig,
) -> (Vec<Option<SessionReport>>, SchedulerStats) {
    let threads = cfg.threads.max(1);
    let live_slots: Vec<usize> = sessions
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_some().then_some(i))
        .collect();
    let order: VecDeque<usize> = live_slots
        .iter()
        .filter(|&&i| !defer_at_start[i])
        .chain(live_slots.iter().filter(|&&i| defer_at_start[i]))
        .copied()
        .collect();
    let shared = Shared::new(sessions, defer_at_start, arrival, order, cfg);

    if threads == 1 {
        // Serial fast path: same code, no thread spawn.
        worker(&shared, 0, cfg);
    } else {
        std::thread::scope(|scope| {
            for w in 0..threads {
                let shared = &shared;
                scope.spawn(move || archytas_par::run_as_worker(|| worker(shared, w, cfg)));
            }
        });
    }

    let shard_steals = shared.shard_steals.load(Ordering::Relaxed);
    let cross_steals = shared.cross_steals.load(Ordering::Relaxed);
    let stats = SchedulerStats {
        steals: shard_steals + cross_steals,
        shard_steals,
        cross_steals,
        contended_probes: shared.contended_probes.load(Ordering::Relaxed),
        deferrals: shared.deferrals.load(Ordering::Relaxed),
        quanta: shared.quanta.load(Ordering::Relaxed),
        resurrections: shared.resurrections.load(Ordering::Relaxed),
        envelope_deferrals: shared.envelope_deferrals.load(Ordering::Relaxed),
        shards: shared.shards.len(),
        scratch: shared.scratch.stats(),
    };
    let reports = shared
        .reports
        .into_iter()
        .map(|m| m.into_inner().unwrap())
        .collect();
    (reports, stats)
}

fn worker(sh: &Shared, w: usize, cfg: &SchedulerConfig) {
    while sh.live.load(Ordering::SeqCst) != 0 {
        promote_resurrections(sh);
        admit_up_to_capacity(sh, cfg);
        let Some(i) = acquire(sh, w, cfg) else {
            fast_forward_if_idle(sh);
            std::thread::yield_now();
            continue;
        };
        sh.quanta.fetch_add(1, Ordering::Relaxed);
        let mut slot = sh.slots[i].lock().unwrap();
        let state = slot
            .as_mut()
            .expect("a queued session index always has live state");
        let mut verdict = QuantumVerdict::Requeue;
        let mut workspace = sh.scratch.checkout();
        for _ in 0..cfg.frames_per_quantum.max(1) {
            match state.step_guarded(&mut workspace) {
                StepOutcome::Progress => {}
                StepOutcome::Done => {
                    verdict = QuantumVerdict::Done;
                    break;
                }
                // A wedged step consumes the rest of this quantum — one
                // Stalled return costs exactly one scheduler round, the
                // same unit the serial-alone loop charges, so the logical
                // deadline clock agrees between fleet and alone.
                StepOutcome::Stalled => break,
                StepOutcome::Failed => {
                    verdict = QuantumVerdict::Failed;
                    break;
                }
            }
        }
        sh.scratch.restore(workspace);
        match verdict {
            QuantumVerdict::Done => {
                let state = slot.take().unwrap();
                drop(slot);
                *sh.reports[i].lock().unwrap() = Some(state.finish());
                sh.active.fetch_sub(1, Ordering::SeqCst);
                sh.live.fetch_sub(1, Ordering::SeqCst);
            }
            QuantumVerdict::Failed => {
                let restart = slot.as_mut().unwrap().try_schedule_restart();
                match restart {
                    Some(backoff) => {
                        // The slot keeps the (checkpoint-restored) state;
                        // only its scheduling claim is released. It will
                        // re-enter through the admission queue once the
                        // backoff expires on the quanta clock.
                        drop(slot);
                        let ready_at = sh.quanta.load(Ordering::Relaxed) + backoff;
                        sh.resurrect.lock().unwrap().push((i, ready_at));
                        sh.resurrections.fetch_add(1, Ordering::Relaxed);
                        sh.active.fetch_sub(1, Ordering::SeqCst);
                    }
                    None => {
                        // Terminal quarantine: reaped like a completion so
                        // the pool keeps serving everyone else.
                        let state = slot.take().unwrap();
                        drop(slot);
                        *sh.reports[i].lock().unwrap() = Some(state.finish_quarantined());
                        sh.active.fetch_sub(1, Ordering::SeqCst);
                        sh.live.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            QuantumVerdict::Requeue => {
                let low = slot.as_ref().unwrap().priority() == Priority::Low;
                drop(slot);
                release(sh, w, i, low, cfg);
            }
        }
    }
}

/// Moves restart-ladder sessions whose backoff has expired (on the
/// executed-quanta clock) back onto the admission queue, so a revived
/// session re-enters through the same capacity gate as a new arrival.
fn promote_resurrections(sh: &Shared) {
    let mut resurrect = sh.resurrect.lock().unwrap();
    if resurrect.is_empty() {
        return;
    }
    let now = sh.quanta.load(Ordering::Relaxed);
    let mut waiting = sh.waiting.lock().unwrap();
    resurrect.retain(|&(i, ready_at)| {
        if ready_at <= now {
            waiting.push_back(i);
            false
        } else {
            true
        }
    });
}

/// Activates arrival-eligible waiting sessions while the active set has
/// capacity. `active` is only incremented under the `waiting` lock, so the
/// cap holds. Activations distribute round-robin across the shard
/// injectors.
///
/// An envelope-deferred session activates into the *deferred* queue (its
/// one-shot flag clears here): it consumes an active slot — so completion
/// accounting stays uniform — but is not runnable, and therefore only
/// starts once the runnable backlog drains below the resume watermark.
fn admit_up_to_capacity(sh: &Shared, cfg: &SchedulerConfig) {
    let now = sh.quanta.load(Ordering::Relaxed);
    let mut waiting = sh.waiting.lock().unwrap();
    let mut idx = 0;
    while idx < waiting.len() && sh.active.load(Ordering::SeqCst) < cfg.max_active.max(1) {
        if sh.arrival[waiting[idx]].load(Ordering::Relaxed) > now {
            idx += 1; // not yet arrived: hold, but keep admitting behind it
            continue;
        }
        let i = waiting.remove(idx).unwrap();
        sh.active.fetch_add(1, Ordering::SeqCst);
        if sh.defer_at_start[i].swap(false, Ordering::SeqCst) {
            sh.deferred.lock().unwrap().push_back(i);
            sh.envelope_deferrals.fetch_add(1, Ordering::Relaxed);
        } else {
            let s = sh.next_shard.fetch_add(1, Ordering::Relaxed) % sh.shards.len();
            sh.shards[s].injector.lock().unwrap().push_back(i);
            sh.runnable.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Anti-livelock for the logical clock: the executed-quanta clock only
/// advances while some session runs, so if *every* remaining session is
/// parked behind a future logical time (restart backoff or a churn arrival
/// round), the earliest such wakeup is fast-forwarded to now. Backoff and
/// arrival rounds shape timing, never outputs, so this is contract-safe.
fn fast_forward_if_idle(sh: &Shared) {
    if sh.runnable.load(Ordering::SeqCst) != 0 || sh.active.load(Ordering::SeqCst) != 0 {
        return;
    }
    let now = sh.quanta.load(Ordering::Relaxed);
    let mut resurrect = sh.resurrect.lock().unwrap();
    let mut waiting = sh.waiting.lock().unwrap();
    // Another worker may have replenished between the counter check and
    // taking the locks; promoting one extra session early is harmless
    // (timing-only), so no re-check is needed.
    let earliest_res = resurrect
        .iter()
        .enumerate()
        .min_by_key(|&(_, &(slot, ready_at))| (ready_at, slot))
        .map(|(pos, &(_, ready_at))| (ready_at, pos));
    let earliest_arr = waiting
        .iter()
        .map(|&i| (sh.arrival[i].load(Ordering::Relaxed), i))
        .min();
    match (earliest_res, earliest_arr) {
        // Earliest wakeup is a resurrection still in the future: pull it
        // forward by re-queueing it through `waiting` (its arrival round
        // is already <= now, so admission picks it up immediately).
        (Some((res_at, pos)), arr)
            if arr.is_none_or(|(arr_at, _)| res_at <= arr_at) && res_at > now =>
        {
            let (i, _) = resurrect.remove(pos);
            waiting.push_back(i);
        }
        // Earliest wakeup is a resurrection that is already due: the next
        // promote_resurrections pass runs it, and fast-forwarding a later
        // arrival past it would reorder admission — do nothing.
        (Some((res_at, _)), arr) if arr.is_none_or(|(arr_at, _)| res_at <= arr_at) => {}
        (_, Some((arr_at, i))) if arr_at > now => {
            sh.arrival[i].store(now, Ordering::Relaxed);
        }
        _ => {}
    }
}

/// Takes the next session for worker `w`.
///
/// **Canonical pop order** (the single authoritative statement — module
/// docs, DESIGN.md and the `pop_order_is_canonical_on_the_sharded_path`
/// test all defer to this list):
///
/// 1. own local deque (front: newest-first FIFO for cache warmth);
/// 2. steal from a shard sibling's deque (back — the oldest, coldest
///    work), probing with `try_lock` so a contended victim is skipped and
///    counted rather than waited on;
/// 3. own shard's injector (front);
/// 4. cross-shard, ring order from the next shard: that shard's injector
///    (front), then steals from its members' deques (back);
/// 5. the deferred queue (front), only once the runnable backlog has
///    drained below the resume watermark.
///
/// Tiers 1–3 touch only queues shared by the worker's own shard; tiers
/// 4–5 run only when the entire shard is dry.
fn acquire(sh: &Shared, w: usize, cfg: &SchedulerConfig) -> Option<usize> {
    // 1. own deque.
    if let Some(i) = sh.locals[w].lock().unwrap().pop_front() {
        sh.runnable.fetch_sub(1, Ordering::SeqCst);
        return Some(i);
    }
    let s = sh.shard_of(w);
    // 2. shard siblings, ring order after `w`.
    let members = sh.shard_members(s);
    let span = members.len();
    for k in 1..span {
        let victim = members.start + (w - members.start + k) % span;
        if let Some(i) = try_steal(sh, &sh.locals[victim]) {
            sh.shard_steals.fetch_add(1, Ordering::Relaxed);
            return Some(i);
        }
    }
    // 3. own shard's injector.
    if let Some(i) = sh.shards[s].injector.lock().unwrap().pop_front() {
        sh.runnable.fetch_sub(1, Ordering::SeqCst);
        return Some(i);
    }
    // 4. cross-shard: injector first, then member deques.
    let num_shards = sh.shards.len();
    for k in 1..num_shards {
        let t = (s + k) % num_shards;
        match sh.shards[t].injector.try_lock() {
            Ok(mut q) => {
                if let Some(i) = q.pop_front() {
                    sh.runnable.fetch_sub(1, Ordering::SeqCst);
                    return Some(i);
                }
            }
            Err(TryLockError::WouldBlock) => {
                sh.contended_probes.fetch_add(1, Ordering::Relaxed);
            }
            Err(TryLockError::Poisoned(e)) => panic!("poisoned injector: {e}"),
        }
        for victim in sh.shard_members(t) {
            if let Some(i) = try_steal(sh, &sh.locals[victim]) {
                sh.cross_steals.fetch_add(1, Ordering::Relaxed);
                return Some(i);
            }
        }
    }
    // 5. deferred, below the resume watermark only.
    if sh.runnable.load(Ordering::SeqCst) < resume_watermark(cfg) {
        if let Some(i) = sh.deferred.lock().unwrap().pop_front() {
            return Some(i);
        }
    }
    None
}

/// One steal probe: `try_lock` the victim's deque and take its oldest
/// entry. A busy victim is skipped (counted as a contended probe) — the
/// thief has other tiers to try, and waiting here is exactly the lock
/// convoy sharding exists to avoid.
fn try_steal(sh: &Shared, victim: &Mutex<VecDeque<usize>>) -> Option<usize> {
    match victim.try_lock() {
        Ok(mut q) => {
            let i = q.pop_back()?;
            sh.runnable.fetch_sub(1, Ordering::SeqCst);
            Some(i)
        }
        Err(TryLockError::WouldBlock) => {
            sh.contended_probes.fetch_add(1, Ordering::Relaxed);
            None
        }
        Err(TryLockError::Poisoned(e)) => panic!("poisoned deque: {e}"),
    }
}

/// Requeues an unfinished session: `Low` sessions park on the deferred
/// queue while the runnable backlog is at or above the watermark;
/// everything else goes back on the worker's own deque.
fn release(sh: &Shared, w: usize, i: usize, low: bool, cfg: &SchedulerConfig) {
    if low && sh.runnable.load(Ordering::SeqCst) >= cfg.defer_watermark {
        sh.deferred.lock().unwrap().push_back(i);
        sh.deferrals.fetch_add(1, Ordering::Relaxed);
    } else {
        sh.locals[w].lock().unwrap().push_back(i);
        sh.runnable.fetch_add(1, Ordering::SeqCst);
    }
}

/// Deferred sessions resume once fewer runnable sessions remain than half
/// the defer watermark (at least one, so a deferred-only fleet always
/// makes progress).
fn resume_watermark(cfg: &SchedulerConfig) -> usize {
    (cfg.defer_watermark / 2).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_shared(cfg: &SchedulerConfig) -> Shared {
        Shared::new(Vec::new(), Vec::new(), Vec::new(), VecDeque::new(), cfg)
    }

    /// Single-quantum, single-thread replay of [`acquire`]'s canonical pop
    /// order on the sharded path: one candidate is planted in each tier and
    /// the drain order must match the documented list exactly —
    /// deterministically, every run.
    #[test]
    fn pop_order_is_canonical_on_the_sharded_path() {
        let cfg = SchedulerConfig {
            threads: 8,
            max_active: 8,
            frames_per_quantum: 1,
            defer_watermark: 16,
            shard_size: 4,
        };
        let sh = test_shared(&cfg);
        assert_eq!(sh.shards.len(), 2);
        assert_eq!(sh.shard_members(0), 0..4);
        assert_eq!(sh.shard_members(1), 4..8);

        // One entry per tier, from worker 0's point of view.
        sh.locals[0].lock().unwrap().push_back(1); // tier 1: own deque
        sh.locals[2].lock().unwrap().push_back(2); // tier 2: shard sibling
        sh.shards[0].injector.lock().unwrap().push_back(3); // tier 3: shard injector
        sh.shards[1].injector.lock().unwrap().push_back(4); // tier 4a: cross injector
        sh.locals[5].lock().unwrap().push_back(5); // tier 4b: cross steal
        sh.deferred.lock().unwrap().push_back(6); // tier 5: deferred
        sh.runnable.store(5, Ordering::SeqCst);

        let drained: Vec<Option<usize>> = (0..7).map(|_| acquire(&sh, 0, &cfg)).collect();
        assert_eq!(
            drained,
            vec![Some(1), Some(2), Some(3), Some(4), Some(5), Some(6), None],
            "pop order must be: own deque, shard steal, shard injector, \
             cross injector, cross steal, deferred"
        );
        assert_eq!(sh.runnable.load(Ordering::SeqCst), 0);
        assert_eq!(sh.shard_steals.load(Ordering::Relaxed), 1);
        assert_eq!(sh.cross_steals.load(Ordering::Relaxed), 1);
        assert_eq!(sh.contended_probes.load(Ordering::Relaxed), 0);
    }

    /// The deferred tier stays fenced while the runnable backlog is at or
    /// above the resume watermark.
    #[test]
    fn deferred_tier_respects_resume_watermark() {
        let cfg = SchedulerConfig {
            threads: 1,
            max_active: 8,
            frames_per_quantum: 1,
            defer_watermark: 4,
            shard_size: 0,
        };
        let sh = test_shared(&cfg);
        assert_eq!(sh.shards.len(), 1, "1 worker collapses to 1 shard");
        sh.deferred.lock().unwrap().push_back(9);
        sh.runnable.store(2, Ordering::SeqCst); // watermark/2 = 2: fenced
        assert_eq!(acquire(&sh, 0, &cfg), None);
        sh.runnable.store(1, Ordering::SeqCst); // below: resumes
        assert_eq!(acquire(&sh, 0, &cfg), Some(9));
    }
}
