//! Fleet serving layer: multiplex many VIO sessions onto a shared
//! accelerator pool.
//!
//! The paper generates one accelerator per vehicle; this crate serves a
//! *fleet*. `N` independent vehicle sessions are admitted, scheduled onto
//! a sharded work-stealing worker pool, and throttled by bounded
//! backpressure. Per-session state is deliberately small — the estimator
//! `Core` (a [`archytas_dataset::VioPipeline`] shell plus the private
//! iteration counter + watchdog of its [`archytas_core::RuntimeSystem`]):
//! the frame stream is materialized lazily at first activation, solver
//! scratch is checked out of a bounded per-worker pool per quantum, and
//! all read-only derived state is shared fleet-wide with exactly-once
//! fill semantics — the accelerator latency/energy model
//! ([`archytas_hw::CachedAcceleratorModel`]), the gating-LUT cache
//! ([`archytas_core::GatingCache`]) and the iteration policy. That split
//! is what makes 1000-session fleets cheap: admission costs a `Core`, not
//! a sequence replay plus a ~1 MB solver workspace.
//!
//! **The hard contract:** every session's output is bitwise identical to
//! running that session alone, serially, at any pool size and any
//! admission order. See [`scheduler`](self) module docs for why the
//! schedule is unobservable and [`admission`](self) for why shedding is
//! arrival-time deterministic.
//!
//! # Fault isolation
//!
//! Every step runs behind `catch_unwind`: a panicking or
//! deadline-violating session moves to [`SessionPhase::Quarantined`] with
//! a [`FailureRecord`] while its neighbors keep producing their exact
//! serial-alone bits. A [`RestartPolicy`] revives quarantined sessions
//! from their last checkpoint after a capped exponential backoff
//! (measured in scheduler rounds — deterministic and seedable), and a
//! [`DeadlinePolicy`] escalates slow sessions `Nominal → SlowSuspect →
//! Quarantined` on a logical frame-count clock by default (wall-clock is
//! a production opt-in). The `archytas-faults` crate's `ChaosPlan` is the
//! adversary: seeded panics, stalls, poisoned observations, and worker
//! jitter for proving all of the above.
//!
//! # Example
//!
//! ```
//! use archytas_dataset::kitti_sequences;
//! use archytas_fleet::{run_fleet, run_session_alone, FleetConfig, Priority, SessionSpec};
//!
//! let specs: Vec<_> = (0..3)
//!     .map(|i| {
//!         SessionSpec::new(
//!             format!("car-{i}"),
//!             kitti_sequences()[i].truncated(2.0),
//!             Priority::Normal,
//!         )
//!     })
//!     .collect();
//! let report = run_fleet(&specs, &FleetConfig { threads: 2, ..FleetConfig::default() });
//! let alone = run_session_alone(&specs[1], &FleetConfig::default());
//! report.sessions[1].assert_bitwise_eq(&alone);
//! ```

#![warn(missing_docs)]

mod admission;
mod isolation;
mod pool;
mod scheduler;
mod session;

pub use admission::{plan as plan_admission, AdmissionDecision};
pub use archytas_telemetry::{FleetTelemetry, PowerEnvelope, SessionTelemetry, TrafficClass};
pub use isolation::{
    fnv1a, DeadlineClock, DeadlinePolicy, DeadlineVerdict, DeadlineWatchdog, FailureCause,
    FailureRecord, RestartPolicy, SessionPhase,
};
pub use pool::ScratchStats;
pub use scheduler::SchedulerStats;
pub use session::{
    fleet_pipeline_config, AdmittedSession, FleetServices, Priority, SessionOutcome, SessionReport,
    SessionSpec,
};

use archytas_hw::{AcceleratorConfig, FpgaPlatform, HIGH_PERF};
use session::{SessionState, StepOutcome};
use std::time::Instant;

/// Deployment-wide configuration of the serving layer.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (0 ⇒ all available cores).
    pub threads: usize,
    /// The accelerator design every vehicle in the fleet deploys.
    pub design: AcceleratorConfig,
    /// The FPGA platform hosting the accelerator instances.
    pub platform: FpgaPlatform,
    /// Per-window latency bound handed to the runtime optimizer (ms).
    pub latency_bound_ms: f64,
    /// Maximum concurrently active sessions (admission cap).
    pub max_active: usize,
    /// Arrival-backlog watermark beyond which `Low` sessions are shed
    /// (`usize::MAX` disables shedding).
    pub shed_watermark: usize,
    /// Fleet-wide power budget in watts (`f64::INFINITY` disables the
    /// envelope). Sessions are priced at the deployed design's full
    /// Eq. 17 power; arrivals that no longer fit are shed (`Low`) or
    /// start-deferred (`Normal`) *before* any queue watermark trips.
    pub power_envelope_w: f64,
    /// Runnable-session watermark at which `Low` sessions are deferred
    /// (`usize::MAX` disables deferral).
    pub defer_watermark: usize,
    /// Frames one scheduler quantum processes before requeueing.
    pub frames_per_quantum: usize,
    /// Workers per scheduler shard (each shard has its own activation
    /// injector and its workers steal within the shard before crossing).
    /// `0` selects the default (4).
    pub shard_size: usize,
    /// Step-deadline policy (logical frame-count clock by default).
    pub deadline: DeadlinePolicy,
    /// Restart ladder for quarantined sessions.
    pub restart: RestartPolicy,
    /// Windows between session checkpoints (restart granularity).
    pub checkpoint_interval: usize,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            threads: 1,
            design: HIGH_PERF,
            platform: FpgaPlatform::zc706(),
            latency_bound_ms: 2.5,
            max_active: 8,
            shed_watermark: usize::MAX,
            power_envelope_w: f64::INFINITY,
            defer_watermark: usize::MAX,
            frames_per_quantum: 4,
            shard_size: 0,
            deadline: DeadlinePolicy::default(),
            restart: RestartPolicy::default(),
            checkpoint_interval: 8,
        }
    }
}

/// Latency percentiles over every frame served by the fleet (host
/// wall-clock; timing-only, not part of the determinism contract).
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencyPercentiles {
    /// Median frame service time (ns).
    pub p50_ns: u64,
    /// 95th percentile (ns).
    pub p95_ns: u64,
    /// 99th percentile (ns).
    pub p99_ns: u64,
}

/// Result of serving one fleet submission batch.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-session reports, in submission order (shed sessions included).
    pub sessions: Vec<SessionReport>,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock serving time (s), excluding sequence construction.
    pub serving_wall_s: f64,
    /// Frames processed across all sessions.
    pub frames_processed: usize,
    /// Windows optimized across all sessions.
    pub windows_processed: usize,
    /// Frames per second of wall-clock serving time.
    pub throughput_fps: f64,
    /// Pooled frame-latency percentiles.
    pub latency: LatencyPercentiles,
    /// Distinct problem shapes the shared accelerator model evaluated.
    pub model_evaluations: usize,
    /// Shared-model lookups served from cache.
    pub model_cache_hits: usize,
    /// Gating tables built (== distinct deployments, so 1 for a
    /// single-design fleet no matter how many sessions).
    pub gating_builds: usize,
    /// Gating-table requests served from the shared cache.
    pub gating_hits: usize,
    /// Sessions that ended terminally quarantined.
    pub quarantined_sessions: usize,
    /// Restarts consumed across the fleet.
    pub session_restarts: usize,
    /// Step-deadline misses across the fleet (lifetime, survives restarts).
    pub deadline_misses: usize,
    /// Sessions shed by admission control (envelope or backlog watermark).
    pub shed_sessions: usize,
    /// Sessions whose start the power envelope deferred (they still ran to
    /// completion with identical bits).
    pub deferred_sessions: usize,
    /// The power envelope the batch was admitted under.
    pub envelope: PowerEnvelope,
    /// Deterministic per-class/fleet telemetry, folded in submission order
    /// over every session that ran — byte-identical at any pool size.
    pub telemetry: FleetTelemetry,
    /// Running fleet watts implied by the telemetry: total modelled energy
    /// over total modelled busy time (the Eq. 17 gated power averaged over
    /// every served window).
    pub fleet_power_w: f64,
    /// Work-stealing / backpressure counters.
    pub scheduler: SchedulerStats,
}

/// Serves a submission batch: plans admission, builds the admitted
/// sessions against shared services, runs them on the worker pool, and
/// gathers per-session reports plus fleet-level metrics.
pub fn run_fleet(specs: &[SessionSpec], config: &FleetConfig) -> FleetReport {
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        config.threads
    };
    let envelope = PowerEnvelope::new(config.power_envelope_w, &config.design, &config.platform);
    let decisions = admission::plan(specs, config.max_active, config.shed_watermark, &envelope);
    let services = FleetServices::new(config);
    let states: Vec<Option<SessionState>> = specs
        .iter()
        .zip(&decisions)
        .map(|(spec, d)| {
            (*d != AdmissionDecision::Shed).then(|| SessionState::new(spec, &services))
        })
        .collect();
    let defer_at_start: Vec<bool> = decisions
        .iter()
        .map(|d| *d == AdmissionDecision::Defer)
        .collect();
    let arrival: Vec<usize> = specs.iter().map(|s| s.arrival_round).collect();

    let started = Instant::now();
    let (reports, stats) = scheduler::run(
        states,
        defer_at_start,
        arrival,
        &scheduler::SchedulerConfig {
            threads,
            max_active: config.max_active,
            frames_per_quantum: config.frames_per_quantum,
            defer_watermark: config.defer_watermark,
            shard_size: config.shard_size,
        },
    );
    let serving_wall_s = started.elapsed().as_secs_f64();

    let sessions: Vec<SessionReport> = reports
        .into_iter()
        .zip(specs)
        .map(|(r, spec)| r.unwrap_or_else(|| SessionReport::shed(spec)))
        .collect();

    let mut all_ns: Vec<u64> = sessions
        .iter()
        .flat_map(|s| s.frame_wall_ns.iter().copied())
        .collect();
    all_ns.sort_unstable();
    let frames_processed = all_ns.len();
    let windows_processed = sessions.iter().map(|s| s.windows).sum();
    let quarantined_sessions = sessions
        .iter()
        .filter(|s| s.outcome == SessionOutcome::Quarantined)
        .count();
    let session_restarts = sessions.iter().map(|s| s.restarts).sum();
    let deadline_misses = sessions.iter().map(|s| s.deadline_misses).sum();
    let shed_sessions = sessions
        .iter()
        .filter(|s| s.outcome == SessionOutcome::Shed)
        .count();
    let deferred_sessions = decisions
        .iter()
        .filter(|d| **d == AdmissionDecision::Defer)
        .count();
    // Canonical fold: submission order over every session that ran. The
    // aggregate is a pure function of the (deterministic) per-session
    // telemetry and the spec order — byte-identical at any pool size.
    let telemetry = FleetTelemetry::fold(
        sessions
            .iter()
            .filter(|s| s.outcome != SessionOutcome::Shed)
            .map(|s| (TrafficClass::from(s.priority), &s.telemetry)),
    );
    let fleet_power_w = telemetry.fleet.watts();
    FleetReport {
        threads,
        serving_wall_s,
        frames_processed,
        windows_processed,
        throughput_fps: if serving_wall_s > 0.0 {
            frames_processed as f64 / serving_wall_s
        } else {
            0.0
        },
        latency: LatencyPercentiles {
            p50_ns: percentile_ns(&all_ns, 50.0),
            p95_ns: percentile_ns(&all_ns, 95.0),
            p99_ns: percentile_ns(&all_ns, 99.0),
        },
        model_evaluations: services.model.evaluations(),
        model_cache_hits: services.model.cache_hits(),
        gating_builds: services.gating.builds(),
        gating_hits: services.gating.hits(),
        quarantined_sessions,
        session_restarts,
        deadline_misses,
        shed_sessions,
        deferred_sessions,
        envelope,
        telemetry,
        fleet_power_w,
        scheduler: stats,
        sessions,
    }
}

/// The serial reference: runs one session to completion on the calling
/// thread with private (unshared) services. Fleet output must match this
/// bitwise, session by session.
///
/// The loop charges one logical round per `step_guarded` call — the same
/// unit the fleet scheduler charges per quantum round — so the logical
/// deadline clock (and therefore quarantine decisions) agrees bit-for-bit
/// with fleet execution. Failures walk the same restart ladder.
pub fn run_session_alone(spec: &SessionSpec, config: &FleetConfig) -> SessionReport {
    let services = FleetServices::new(config);
    let mut state = SessionState::new(spec, &services);
    let mut workspace = archytas_slam::SolverWorkspace::new();
    loop {
        match state.step_guarded(&mut workspace) {
            StepOutcome::Progress | StepOutcome::Stalled => {}
            StepOutcome::Done => return state.finish(),
            StepOutcome::Failed => {
                if state.try_schedule_restart().is_none() {
                    return state.finish_quarantined();
                }
            }
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted sample (ns).
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&s, 50.0), 50);
        assert_eq!(percentile_ns(&s, 95.0), 95);
        assert_eq!(percentile_ns(&s, 99.0), 99);
        assert_eq!(percentile_ns(&s, 100.0), 100);
        assert_eq!(percentile_ns(&[], 50.0), 0);
        assert_eq!(percentile_ns(&[7], 99.0), 7);
    }
}
