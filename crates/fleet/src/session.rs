//! A vehicle session: one VIO pipeline plus its runtime instance, stepped
//! frame-by-frame by the fleet scheduler.
//!
//! A session owns *all* of its mutable state — pipeline, sliding window,
//! iteration counter, watchdog — so the scheduler can migrate it freely
//! between workers: whichever worker holds the session's lock sees exactly
//! the state the previous quantum left behind. The only things a session
//! shares with its neighbours are immutable, pure-function caches
//! ([`CachedAcceleratorModel`], [`archytas_core::GatingCache`]), which is
//! why fleet execution is bitwise identical to running each session alone.
//!
//! # Fault isolation
//!
//! Every step executes behind [`std::panic::catch_unwind`]: a panicking
//! session is moved to [`SessionPhase::Quarantined`] with a
//! [`FailureRecord`] instead of unwinding into the worker. The
//! deterministic state a step mutates lives in one `Core` struct, cloned
//! periodically as a checkpoint — the restart ladder overwrites a torn
//! core with the checkpoint, so mid-assembly wreckage is never observable.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

use archytas_core::{GatingCache, IterPolicy, RuntimeSystem};
use archytas_dataset::{
    DegradationCause, Frame, HealthState, PipelineConfig, SequenceSpec, VioPipeline,
};
use archytas_faults::{ChaosPlan, FaultPlan};
use archytas_hw::{
    f32_linear_solver, AcceleratorConfig, AcceleratorModel, CachedAcceleratorModel, FpgaPlatform,
};
use archytas_mdfg::ProblemShape;
use archytas_slam::{FactorWeights, Pose, SolverWorkspace, TrajectoryMetrics};
use archytas_telemetry::{SessionTelemetry, TrafficClass};

use crate::isolation::{
    fnv1a, DeadlineClock, DeadlinePolicy, DeadlineVerdict, DeadlineWatchdog, FailureCause,
    FailureRecord, RestartPolicy, SessionPhase,
};
use crate::FleetConfig;

/// Scheduling priority of a session.
///
/// Priority only affects *when* a session's frames are processed (admission,
/// shedding, backpressure deferral) — never *what* they compute. A `Low`
/// session that completes produces the same bits as a `High` one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// First to be deferred under backpressure, only class that can be shed.
    Low,
    /// Default class: admitted in arrival order, never shed.
    Normal,
    /// Safety-critical vehicle: never shed, never deferred.
    High,
}

impl From<Priority> for TrafficClass {
    fn from(p: Priority) -> Self {
        match p {
            Priority::Low => TrafficClass::Low,
            Priority::Normal => TrafficClass::Normal,
            Priority::High => TrafficClass::High,
        }
    }
}

/// Description of one vehicle joining the fleet.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Display name (unique per fleet run).
    pub name: String,
    /// The sensor sequence this vehicle replays.
    pub sequence: SequenceSpec,
    /// Scheduling class.
    pub priority: Priority,
    /// Optional seeded fault plan applied to the sensor stream.
    pub fault_plan: Option<FaultPlan>,
    /// Optional seeded execution-level chaos plan (panics, stalls,
    /// poisoned observations, worker jitter).
    pub chaos: Option<ChaosPlan>,
    /// Scheduler round (logical quanta clock) at which this vehicle joins
    /// the fleet. `0` joins at startup; later rounds model mid-run churn.
    /// Scheduling-only: a late joiner computes the same bits as an early
    /// one.
    pub arrival_round: usize,
    /// Leaves the fleet after this many frames (the rest of the sequence is
    /// never delivered). Applied identically by [`crate::run_session_alone`],
    /// so a leaver still satisfies the bitwise serial-identical contract.
    pub leave_after_frames: Option<usize>,
    /// Mid-run priority changes as `(frame_index, new_priority)` pairs: the
    /// flip takes effect once the session has processed that many frames.
    /// Scheduling-only, like [`SessionSpec::priority`] itself.
    pub priority_flips: Vec<(usize, Priority)>,
}

impl SessionSpec {
    /// A fault-free session.
    pub fn new(name: impl Into<String>, sequence: SequenceSpec, priority: Priority) -> Self {
        Self {
            name: name.into(),
            sequence,
            priority,
            fault_plan: None,
            chaos: None,
            arrival_round: 0,
            leave_after_frames: None,
            priority_flips: Vec::new(),
        }
    }

    /// Attaches a seeded fault plan to the sensor stream.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Attaches a seeded chaos plan to the session's execution.
    pub fn with_chaos(mut self, plan: ChaosPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Joins the fleet at the given scheduler round instead of at startup.
    pub fn arriving_at(mut self, round: usize) -> Self {
        self.arrival_round = round;
        self
    }

    /// Leaves the fleet after the given number of frames.
    pub fn leaving_after(mut self, frames: usize) -> Self {
        self.leave_after_frames = Some(frames);
        self
    }

    /// Flips the scheduling priority once `frame` frames have been
    /// processed.
    pub fn with_priority_flip(mut self, frame: usize, priority: Priority) -> Self {
        self.priority_flips.push((frame, priority));
        self
    }
}

/// How a session left the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Every frame was processed.
    Completed,
    /// Rejected by admission control before processing any frame.
    Shed,
    /// Quarantined by the fault-isolation layer (panic or deadline-miss
    /// budget) with no restart budget left.
    Quarantined,
}

/// Final per-session record, sufficient for a bitwise comparison against a
/// serial run of the same session alone.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Session name from the spec.
    pub name: String,
    /// Scheduling class from the spec.
    pub priority: Priority,
    /// Completion status.
    pub outcome: SessionOutcome,
    /// Frames pushed through the front-end.
    pub frames: usize,
    /// Windows optimized.
    pub windows: usize,
    /// Newest-keyframe estimate after each window (the deterministic
    /// output contract: compared bit-for-bit against a serial-alone run).
    pub estimates: Vec<Pose>,
    /// Iteration budget the runtime granted for each window.
    pub iterations: Vec<usize>,
    /// Total modelled accelerator latency (ms).
    pub modelled_latency_ms: f64,
    /// Total modelled energy at the gated power (mJ).
    pub modelled_energy_mj: f64,
    /// Trajectory RMSE (m).
    pub rmse_m: f64,
    /// Windows that closed in the `Degraded` ladder state.
    pub degraded_windows: usize,
    /// Windows for which the runtime watchdog held the full configuration.
    pub watchdog_windows: usize,
    /// Windows degraded by a sanitized sensor fault.
    pub sensor_fault_windows: usize,
    /// Windows degraded by solver divergence (no sensor fault latched).
    pub solver_divergence_windows: usize,
    /// Windows degraded by a failed marginalization (prior reset).
    pub prior_reset_windows: usize,
    /// Final fault-isolation phase.
    pub phase: SessionPhase,
    /// Restarts consumed from the restart ladder.
    pub restarts: usize,
    /// Step-deadline misses across the session's whole life (survives
    /// restarts; deterministic under the logical clock).
    pub deadline_misses: usize,
    /// The (most recent) quarantine event, if any.
    pub failure: Option<FailureRecord>,
    /// Host wall-clock time per frame (ns). Timing-only: excluded from the
    /// determinism contract, pooled fleet-wide for latency percentiles.
    pub frame_wall_ns: Vec<u64>,
    /// Per-window latency/energy histograms and iteration counts, recorded
    /// on the step path. Deterministic (built from modelled quantities)
    /// and checked by [`SessionReport::assert_bitwise_eq`], but *excluded*
    /// from [`SessionReport::digest`] — the digest's field set is frozen.
    pub telemetry: SessionTelemetry,
}

impl SessionReport {
    /// The empty report of a shed session.
    pub(crate) fn shed(spec: &SessionSpec) -> Self {
        Self {
            name: spec.name.clone(),
            priority: spec.priority,
            outcome: SessionOutcome::Shed,
            frames: 0,
            windows: 0,
            estimates: Vec::new(),
            iterations: Vec::new(),
            modelled_latency_ms: 0.0,
            modelled_energy_mj: 0.0,
            rmse_m: 0.0,
            degraded_windows: 0,
            watchdog_windows: 0,
            sensor_fault_windows: 0,
            solver_divergence_windows: 0,
            prior_reset_windows: 0,
            phase: SessionPhase::Nominal,
            restarts: 0,
            deadline_misses: 0,
            failure: None,
            frame_wall_ns: Vec::new(),
            telemetry: SessionTelemetry::new(),
        }
    }

    /// The deterministic payload as raw bits, one `[u64; 7]` per window
    /// (quaternion w,x,y,z then translation x,y,z).
    pub fn estimate_bits(&self) -> Vec<[u64; 7]> {
        self.estimates
            .iter()
            .map(|p| {
                [
                    p.rot.w.to_bits(),
                    p.rot.v.x().to_bits(),
                    p.rot.v.y().to_bits(),
                    p.rot.v.z().to_bits(),
                    p.trans.x().to_bits(),
                    p.trans.y().to_bits(),
                    p.trans.z().to_bits(),
                ]
            })
            .collect()
    }

    /// FNV-1a digest over every deterministic field — two runs of the same
    /// session agree on the digest iff they agree on every estimate bit,
    /// every iteration decision, and every modelled cost.
    ///
    /// The eaten field set is frozen: restart/deadline counters are report
    /// metadata, not digest payload, so a restarted session that replays to
    /// the same estimates digests identically to a clean run — which is
    /// exactly the restart-determinism contract.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.windows as u64);
        for bits in self.estimate_bits() {
            bits.into_iter().for_each(&mut eat);
        }
        for &it in &self.iterations {
            eat(it as u64);
        }
        eat(self.modelled_latency_ms.to_bits());
        eat(self.modelled_energy_mj.to_bits());
        eat(self.rmse_m.to_bits());
        eat(self.degraded_windows as u64);
        eat(self.watchdog_windows as u64);
        h
    }

    /// Asserts bitwise equality of the deterministic payload with `other`,
    /// panicking with a window-level diagnostic on the first divergence.
    pub fn assert_bitwise_eq(&self, other: &Self) {
        assert_eq!(self.name, other.name);
        assert_eq!(self.outcome, other.outcome, "{}: outcome", self.name);
        assert_eq!(self.windows, other.windows, "{}: window count", self.name);
        assert_eq!(
            self.iterations, other.iterations,
            "{}: iteration schedule",
            self.name
        );
        for (w, (a, b)) in self
            .estimate_bits()
            .iter()
            .zip(other.estimate_bits().iter())
            .enumerate()
        {
            assert_eq!(a, b, "{}: estimate bits diverge at window {w}", self.name);
        }
        assert_eq!(
            self.modelled_latency_ms.to_bits(),
            other.modelled_latency_ms.to_bits(),
            "{}: modelled latency",
            self.name
        );
        assert_eq!(
            self.modelled_energy_mj.to_bits(),
            other.modelled_energy_mj.to_bits(),
            "{}: modelled energy",
            self.name
        );
        assert_eq!(
            self.rmse_m.to_bits(),
            other.rmse_m.to_bits(),
            "{}: rmse",
            self.name
        );
        assert_eq!(
            self.degraded_windows, other.degraded_windows,
            "{}: degraded windows",
            self.name
        );
        assert_eq!(
            self.watchdog_windows, other.watchdog_windows,
            "{}: watchdog windows",
            self.name
        );
        assert_eq!(
            self.sensor_fault_windows, other.sensor_fault_windows,
            "{}: sensor-fault windows",
            self.name
        );
        assert_eq!(
            self.solver_divergence_windows, other.solver_divergence_windows,
            "{}: solver-divergence windows",
            self.name
        );
        assert_eq!(
            self.prior_reset_windows, other.prior_reset_windows,
            "{}: prior-reset windows",
            self.name
        );
        assert_eq!(
            self.telemetry, other.telemetry,
            "{}: telemetry histograms",
            self.name
        );
    }
}

/// The immutable services every session shares: the accelerator latency
/// model, the gating-table cache, and the iteration policy. All values are
/// pure functions of their keys, so sharing them cannot change any
/// session's numerics — it only removes redundant work.
#[derive(Debug)]
pub struct FleetServices {
    /// Fleet-wide shared latency/energy model (exactly-once per shape).
    pub model: Arc<CachedAcceleratorModel>,
    /// Fleet-wide gating-LUT cache (exactly-once per deployment).
    pub gating: Arc<GatingCache>,
    /// Shared iteration policy (immutable lookup table).
    pub policy: Arc<IterPolicy>,
    /// Step-deadline policy every session runs under.
    pub deadline: DeadlinePolicy,
    /// Restart/backoff ladder every session runs under.
    pub restart: RestartPolicy,
    /// Windows between session checkpoints (when restarts are enabled).
    pub checkpoint_interval: usize,
    design: AcceleratorConfig,
    platform: FpgaPlatform,
    latency_bound_ms: f64,
}

impl FleetServices {
    /// Builds the shared services for one fleet deployment.
    pub fn new(config: &FleetConfig) -> Self {
        Self {
            model: CachedAcceleratorModel::shared(AcceleratorModel::new(
                config.design,
                config.platform.clone(),
            )),
            gating: Arc::new(GatingCache::new()),
            policy: Arc::new(IterPolicy::default_table()),
            deadline: config.deadline,
            restart: config.restart,
            checkpoint_interval: config.checkpoint_interval,
            design: config.design,
            platform: config.platform.clone(),
            latency_bound_ms: config.latency_bound_ms,
        }
    }

    /// A per-session runtime instance drawing its gating table from the
    /// shared cache. The `IterCounter` and `RuntimeWatchdog` inside are
    /// private per-session state.
    pub fn runtime(&self) -> RuntimeSystem {
        self.gating.runtime(
            self.design,
            &ProblemShape::typical(),
            self.latency_bound_ms,
            &self.platform,
            Arc::clone(&self.policy),
        )
    }
}

/// The pipeline configuration every fleet session runs: the default VIO
/// stack with a Huber robust kernel, matching the fault-injection matrix so
/// faulted sessions stay well-conditioned.
pub fn fleet_pipeline_config() -> PipelineConfig {
    PipelineConfig {
        weights: FactorWeights::default().with_huber(0.004),
        ..PipelineConfig::default()
    }
}

/// What one guarded step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepOutcome {
    /// A frame was processed; more remain.
    Progress,
    /// The sequence is exhausted.
    Done,
    /// The step is wedged (chaos stall); it consumed this scheduler round
    /// without touching any deterministic state.
    Stalled,
    /// The session failed (panic or deadline quarantine) and holds a
    /// [`FailureRecord`]; ask [`SessionState::try_schedule_restart`].
    Failed,
}

/// Every piece of deterministic state a step mutates, in one cloneable
/// struct — the unit of checkpoint/restore for the restart ladder. The
/// frame stream, chaos bookkeeping, and lifetime counters live *outside*,
/// so a restore rewinds the estimator without forgetting what already
/// happened to the session.
#[derive(Debug, Clone)]
struct Core {
    cursor: usize,
    pipeline: VioPipeline,
    runtime: RuntimeSystem,
    metrics: TrajectoryMetrics,
    estimates: Vec<Pose>,
    iterations: Vec<usize>,
    modelled_latency_ms: f64,
    modelled_energy_mj: f64,
    degraded_windows: usize,
    watchdog_windows: usize,
    /// Degradation-cause counts: [sensor fault, solver divergence, prior
    /// reset].
    cause_windows: [usize; 3],
    /// Per-window telemetry (inside the checkpoint: a restart replays the
    /// rewound windows into the histograms, so a restarted session's
    /// telemetry is bitwise a clean run's).
    telemetry: SessionTelemetry,
    /// Deadline streak state (inside the checkpoint, so a restart also
    /// clears the miss streak that killed the session).
    watchdog: DeadlineWatchdog,
    /// Scheduler rounds consumed by stalls since the last window closed —
    /// the logical-clock numerator of the deadline check.
    stalls_since_window: usize,
}

impl Core {
    /// Processes the next frame (front-end, health-fed runtime decision,
    /// f32 accelerator solve). Returns `(done, window latency)` where the
    /// latency is `Some` iff a window closed this frame. Purely a function
    /// of the session's own state — no observable dependence on what other
    /// sessions are doing.
    ///
    /// `inject_panic` fires the chaos panic *after* the front-end ingests
    /// the frame, so the unwind genuinely tears mid-assembly state (a
    /// half-extended window) — the hardest case for isolation.
    fn step_frame(
        &mut self,
        frames: &[Frame],
        model: &CachedAcceleratorModel,
        workspace: &mut SolverWorkspace,
        inject_panic: bool,
    ) -> (bool, Option<f64>) {
        if self.cursor >= frames.len() {
            // Zero-frame stream (a churn leaver truncated to nothing):
            // complete immediately.
            return (true, None);
        }
        let produced = self.pipeline.push_frame(&frames[self.cursor]);
        self.cursor += 1;
        if inject_panic {
            panic!("chaos: injected session panic at frame {}", self.cursor - 1);
        }
        let mut window_latency = None;
        if produced {
            let features = self.pipeline.window().num_landmarks();
            let healthy = !self.pipeline.health().is_suspect();
            let decision = self.runtime.step_with_health(features, healthy);
            if self.runtime.watchdog().engaged() {
                self.watchdog_windows += 1;
            }
            let result = self.pipeline.optimize_and_slide_with_in(
                workspace,
                decision.iterations,
                &f32_linear_solver,
            );
            let shape = ProblemShape::from_workload(&result.workload);
            let latency_ms = model.window_latency_ms(&shape, decision.iterations);
            let energy_mj = latency_ms * decision.gated_power_w;
            self.modelled_latency_ms += latency_ms;
            self.modelled_energy_mj += energy_mj;
            self.telemetry
                .record_window(latency_ms, energy_mj, decision.iterations as u32);
            if result.health == HealthState::Degraded {
                self.degraded_windows += 1;
            }
            match result.cause {
                Some(DegradationCause::SensorFault) => self.cause_windows[0] += 1,
                Some(DegradationCause::SolverDivergence) => self.cause_windows[1] += 1,
                Some(DegradationCause::PriorReset) => self.cause_windows[2] += 1,
                None => {}
            }
            self.metrics
                .record(&result.estimate, &result.ground_truth, 0.0);
            self.estimates.push(result.estimate);
            self.iterations.push(decision.iterations);
            window_latency = Some(latency_ms);
        }
        (self.cursor >= frames.len(), window_latency)
    }
}

/// Live state of one admitted session.
///
/// Admission is cheap by design: an admitted-but-idle session holds only the
/// estimator [`Core`] (pipeline shell, runtime handles into the shared
/// caches, telemetry) plus the *spec* of its frame stream. The stream itself
/// — the dominant per-session allocation — is materialized lazily by
/// [`SessionState::ensure_started`] on first activation, and solver scratch
/// is never owned at all: every step borrows a [`SolverWorkspace`] from the
/// caller (the scheduler's bounded pool, sized by workers not sessions).
pub(crate) struct SessionState {
    name: String,
    priority: Priority,
    /// Mid-run priority flips from the spec, keyed on frames processed.
    priority_flips: Vec<(usize, Priority)>,
    /// Recipe for the frame stream (sequence + fault plan + early leave),
    /// kept so `ensure_started` can build it on first activation.
    sequence: SequenceSpec,
    fault_plan: Option<FaultPlan>,
    leave_after_frames: Option<usize>,
    /// The (possibly fault-injected and chaos-poisoned) frame stream.
    /// `None` until first activation; immutable once built — restarts
    /// replay it from the checkpoint cursor.
    frames: Option<Vec<Frame>>,
    model: Arc<CachedAcceleratorModel>,
    deadline: DeadlinePolicy,
    restart: RestartPolicy,
    checkpoint_interval: usize,
    chaos: Option<ChaosPlan>,
    /// One-shot latch per chaos event. Lives outside the checkpoint: chaos
    /// models *transient* defects, so a restarted session replays the
    /// trigger frame cleanly instead of dying in a loop.
    chaos_fired: Vec<bool>,
    /// Stall rounds still to burn before the wedged step completes.
    pending_stall: usize,
    core: Core,
    checkpoint: Option<Box<Core>>,
    phase: SessionPhase,
    failure: Option<FailureRecord>,
    restarts: usize,
    /// Lifetime deadline misses (outside the checkpoint: restarts must not
    /// erase the record of why they happened).
    deadline_misses_total: usize,
    frame_wall_ns: Vec<u64>,
}

impl SessionState {
    /// Admits the session: wires a fresh pipeline to a runtime drawing from
    /// the shared caches. Deliberately does *not* build the frame stream or
    /// seed the restart checkpoint — both happen at first activation
    /// ([`SessionState::ensure_started`]), so admitting a session costs a
    /// [`Core`], not a sequence replay.
    pub(crate) fn new(spec: &SessionSpec, services: &FleetServices) -> Self {
        let core = Core {
            cursor: 0,
            pipeline: VioPipeline::new(fleet_pipeline_config()),
            runtime: services.runtime(),
            metrics: TrajectoryMetrics::new(),
            estimates: Vec::new(),
            iterations: Vec::new(),
            modelled_latency_ms: 0.0,
            modelled_energy_mj: 0.0,
            degraded_windows: 0,
            watchdog_windows: 0,
            cause_windows: [0; 3],
            telemetry: SessionTelemetry::new(),
            watchdog: DeadlineWatchdog::default(),
            stalls_since_window: 0,
        };
        Self {
            name: spec.name.clone(),
            priority: spec.priority,
            priority_flips: spec.priority_flips.clone(),
            sequence: spec.sequence.clone(),
            fault_plan: spec.fault_plan.clone(),
            leave_after_frames: spec.leave_after_frames,
            frames: None,
            model: Arc::clone(&services.model),
            deadline: services.deadline,
            restart: services.restart,
            checkpoint_interval: services.checkpoint_interval,
            chaos_fired: vec![false; spec.chaos.as_ref().map_or(0, |p| p.events.len())],
            chaos: spec.chaos.clone(),
            pending_stall: 0,
            core,
            checkpoint: None,
            phase: SessionPhase::Nominal,
            failure: None,
            restarts: 0,
            deadline_misses_total: 0,
            frame_wall_ns: Vec::new(),
        }
    }

    /// Current scheduling priority: the spec priority, overridden by the
    /// latest priority flip whose frame index has been processed. Like the
    /// base priority this only moves sessions between queues — it never
    /// changes what any session computes.
    pub(crate) fn priority(&self) -> Priority {
        self.priority_flips
            .iter()
            .rfind(|&&(frame, _)| frame <= self.core.cursor)
            .map_or(self.priority, |&(_, p)| p)
    }

    /// First-activation work, deferred out of admission: replays the
    /// sequence spec into frames, applies the fault plan, chaos poisoning
    /// and the early-leave truncation, and seeds the restart checkpoint
    /// with the pristine core (so a failure before the first periodic
    /// checkpoint can still restart from frame 0). Idempotent; the stream
    /// is a pure function of the spec, so *when* it is built can never
    /// change the session's bits.
    pub(crate) fn ensure_started(&mut self) {
        if self.frames.is_some() {
            return;
        }
        let mut frames = self.sequence.build().frames;
        if let Some(plan) = &self.fault_plan {
            frames = archytas_faults::apply(plan, &frames);
        }
        if let Some(plan) = &self.chaos {
            plan.poison_frames(&mut frames);
        }
        if let Some(n) = self.leave_after_frames {
            frames.truncate(n);
        }
        self.frames = Some(frames);
        if self.restart.max_restarts > 0 {
            self.checkpoint = Some(Box::new(self.core.clone()));
        }
    }

    /// One guarded step: burns a pending stall round, fires due chaos,
    /// executes the frame behind `catch_unwind`, and folds the result into
    /// the deadline watchdog and checkpoint schedule. Solver scratch is
    /// borrowed from the caller for just this step — sessions own none.
    pub(crate) fn step_guarded(&mut self, workspace: &mut SolverWorkspace) -> StepOutcome {
        self.ensure_started();
        if self.phase == SessionPhase::Quarantined {
            // Defensive: a quarantined session must never be stepped.
            return StepOutcome::Failed;
        }
        if self.pending_stall > 0 {
            self.pending_stall -= 1;
            self.core.stalls_since_window += 1;
            return StepOutcome::Stalled;
        }
        let frame_idx = self.core.cursor;
        let mut inject_panic = false;
        if let Some(plan) = &self.chaos {
            if let Some((ev, rounds)) = plan.stall_event_at(frame_idx) {
                if !self.chaos_fired[ev] {
                    self.chaos_fired[ev] = true;
                    if rounds > 0 {
                        self.pending_stall = rounds - 1;
                        self.core.stalls_since_window += 1;
                        return StepOutcome::Stalled;
                    }
                }
            }
            // Jitter burns host cycles only; it must not touch any
            // deterministic state.
            for _ in 0..plan.jitter_spins(frame_idx) {
                std::hint::spin_loop();
            }
            if let Some(ev) = plan.panic_event_at(frame_idx) {
                if !self.chaos_fired[ev] {
                    // Latched *before* the panic fires: the defect is
                    // transient, so a restart replays this frame cleanly.
                    self.chaos_fired[ev] = true;
                    inject_panic = true;
                }
            }
        }
        let t0 = Instant::now();
        let core = &mut self.core;
        let frames = self.frames.as_deref().expect("ensure_started ran");
        let model = &*self.model;
        // AssertUnwindSafe: a panic can leave `core` torn mid-assembly, but
        // a torn core is never observed afterwards — the failure path
        // either overwrites it with a checkpoint clone or quarantines the
        // session so it is never stepped again. The panic is caught here,
        // inside the slot lock's critical section, so no Mutex is poisoned
        // and no other session can ever see the wreckage.
        let step = catch_unwind(AssertUnwindSafe(|| {
            core.step_frame(frames, model, workspace, inject_panic)
        }));
        let wall_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        match step {
            Err(payload) => {
                self.fail(
                    FailureCause::Panic,
                    panic_payload_string(payload),
                    frame_idx,
                );
                StepOutcome::Failed
            }
            Ok((done, window)) => {
                self.frame_wall_ns.push(wall_ns);
                if let Some(latency_ms) = window {
                    let rounds = 1 + self.core.stalls_since_window;
                    self.core.stalls_since_window = 0;
                    let missed = match self.deadline.clock {
                        DeadlineClock::Logical => rounds as f64 > self.deadline.multiplier,
                        DeadlineClock::WallClock => {
                            wall_ns as f64 > latency_ms * self.deadline.multiplier * 1e6
                        }
                    };
                    if missed {
                        self.deadline_misses_total += 1;
                    }
                    match self.core.watchdog.observe(missed, &self.deadline) {
                        DeadlineVerdict::Quarantine => {
                            let detail = format!(
                                "window exceeded {}x the Eq. 13 deadline \
                                 ({} consecutive misses)",
                                self.deadline.multiplier,
                                self.core.watchdog.consecutive_misses(),
                            );
                            self.fail(FailureCause::DeadlineMiss, detail, frame_idx);
                            return StepOutcome::Failed;
                        }
                        DeadlineVerdict::Slow => self.phase = SessionPhase::SlowSuspect,
                        DeadlineVerdict::Ok => self.phase = SessionPhase::Nominal,
                    }
                    if self.restart.max_restarts > 0
                        && self.phase == SessionPhase::Nominal
                        && self
                            .core
                            .estimates
                            .len()
                            .is_multiple_of(self.checkpoint_interval.max(1))
                    {
                        self.checkpoint = Some(Box::new(self.core.clone()));
                    }
                } else if self.phase == SessionPhase::Restarting {
                    self.phase = SessionPhase::Nominal;
                }
                if done {
                    StepOutcome::Done
                } else {
                    StepOutcome::Progress
                }
            }
        }
    }

    fn fail(&mut self, cause: FailureCause, detail: String, frame: usize) {
        self.phase = SessionPhase::Quarantined;
        self.failure = Some(FailureRecord {
            cause,
            detail,
            frame,
            window: self.core.estimates.len(),
            restarts_before: self.restarts,
        });
    }

    /// Attempts to schedule a restart of a failed session: restores the
    /// last checkpoint over the (possibly torn) core and returns the
    /// backoff in scheduler rounds the session must sit out before
    /// re-entering admission. `None` when the restart budget is exhausted —
    /// the quarantine is terminal.
    pub(crate) fn try_schedule_restart(&mut self) -> Option<usize> {
        if self.restarts >= self.restart.max_restarts {
            return None;
        }
        let checkpoint = self.checkpoint.as_deref()?;
        self.core = checkpoint.clone();
        self.pending_stall = 0;
        self.phase = SessionPhase::Restarting;
        let n = self.restarts;
        self.restarts += 1;
        Some(self.restart.backoff_rounds(fnv1a(self.name.as_bytes()), n))
    }

    /// Consumes the session into its final report.
    pub(crate) fn finish(self) -> SessionReport {
        self.into_report(SessionOutcome::Completed)
    }

    /// Consumes a terminally quarantined session into its final report,
    /// keeping the windows it completed before failing.
    pub(crate) fn finish_quarantined(self) -> SessionReport {
        self.into_report(SessionOutcome::Quarantined)
    }

    fn into_report(self, outcome: SessionOutcome) -> SessionReport {
        SessionReport {
            name: self.name,
            priority: self.priority,
            outcome,
            frames: self.core.cursor,
            windows: self.core.estimates.len(),
            estimates: self.core.estimates,
            iterations: self.core.iterations,
            modelled_latency_ms: self.core.modelled_latency_ms,
            modelled_energy_mj: self.core.modelled_energy_mj,
            rmse_m: self.core.metrics.rmse(),
            degraded_windows: self.core.degraded_windows,
            watchdog_windows: self.core.watchdog_windows,
            sensor_fault_windows: self.core.cause_windows[0],
            solver_divergence_windows: self.core.cause_windows[1],
            prior_reset_windows: self.core.cause_windows[2],
            phase: self.phase,
            restarts: self.restarts,
            deadline_misses: self.deadline_misses_total,
            failure: self.failure,
            frame_wall_ns: self.frame_wall_ns,
            telemetry: self.core.telemetry,
        }
    }
}

/// A fleet session held at the admitted-but-idle stage — the probe API the
/// `session_admit_cost` microbench (and anything else that wants to meter
/// the serving layer) uses to measure what admission actually costs.
///
/// [`AdmittedSession::admit`] performs exactly the work `run_fleet` does per
/// admitted session before its first quantum: build the estimator [`Core`]
/// against the shared caches. Frames and the restart checkpoint are
/// materialized by [`AdmittedSession::activate`]; solver scratch is borrowed
/// per step, never owned.
pub struct AdmittedSession {
    state: SessionState,
}

impl AdmittedSession {
    /// Admits the session against the shared services (idle: no frame
    /// stream yet).
    pub fn admit(spec: &SessionSpec, services: &FleetServices) -> Self {
        Self {
            state: SessionState::new(spec, services),
        }
    }

    /// First-activation work: builds the frame stream and seeds the restart
    /// checkpoint.
    pub fn activate(&mut self) {
        self.state.ensure_started();
    }

    /// Steps one frame with caller-provided solver scratch. Returns `false`
    /// once the session is done (or quarantined).
    pub fn step(&mut self, workspace: &mut SolverWorkspace) -> bool {
        matches!(
            self.state.step_guarded(workspace),
            StepOutcome::Progress | StepOutcome::Stalled
        )
    }

    /// Windows optimized so far.
    pub fn windows(&self) -> usize {
        self.state.core.estimates.len()
    }

    /// Consumes the session into its report.
    pub fn into_report(self) -> SessionReport {
        self.state.finish()
    }
}

/// Renders a caught panic payload as a string for the [`FailureRecord`].
fn panic_payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_dataset::kitti_sequences;
    use archytas_faults::ChaosKind;

    /// Installs (once) a panic hook that swallows injected-chaos panics but
    /// forwards everything else — real failures stay loud, and tests that
    /// panic in parallel never race on hook ownership.
    fn silence_chaos_panics() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let chaos = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.starts_with("chaos:"));
                if !chaos {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn digest_is_sensitive_to_every_deterministic_field() {
        let spec = SessionSpec::new("t", kitti_sequences()[0].truncated(2.0), Priority::Normal);
        let base = SessionReport::shed(&spec);
        let mut other = base.clone();
        assert_eq!(base.digest(), other.digest());
        other.rmse_m = 1.0e-300; // one bit of payload
        assert_ne!(base.digest(), other.digest());
        let mut third = base.clone();
        third.iterations.push(7);
        assert_ne!(base.digest(), third.digest());
        // Wall-clock timing must NOT feed the digest.
        let mut timed = base.clone();
        timed.frame_wall_ns.push(123);
        assert_eq!(base.digest(), timed.digest());
        // Restart/deadline counters are metadata, not payload: a restarted
        // session that replayed to the same estimates digests identically.
        let mut restarted = base.clone();
        restarted.restarts = 1;
        restarted.deadline_misses = 3;
        assert_eq!(base.digest(), restarted.digest());
        // Telemetry is deterministic but NOT digest payload: the digest
        // body is frozen, so adding observability cannot invalidate any
        // archived digest.
        let mut observed = base.clone();
        observed.telemetry.record_window(1.5, 6.0, 3);
        assert_eq!(base.digest(), observed.digest());
    }

    #[test]
    fn session_alone_produces_windows() {
        let spec = SessionSpec::new("alone", kitti_sequences()[3].truncated(2.5), Priority::High);
        let services = FleetServices::new(&FleetConfig::default());
        let mut st = SessionState::new(&spec, &services);
        let mut ws = SolverWorkspace::new();
        loop {
            match st.step_guarded(&mut ws) {
                StepOutcome::Done => break,
                StepOutcome::Progress => {}
                other => panic!("clean session produced {other:?}"),
            }
        }
        let report = st.finish();
        assert!(report.windows > 0);
        assert_eq!(report.frames, report.frame_wall_ns.len());
        assert_eq!(report.windows, report.estimates.len());
        assert!(report.rmse_m.is_finite());
        assert!(report.modelled_latency_ms > 0.0);
        assert_eq!(report.phase, SessionPhase::Nominal);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.deadline_misses, 0);
        assert!(report.failure.is_none());
    }

    #[test]
    fn injected_panic_quarantines_with_failure_record() {
        let spec = SessionSpec::new(
            "doomed",
            kitti_sequences()[3].truncated(2.5),
            Priority::High,
        )
        .with_chaos(ChaosPlan::new(1).with(ChaosKind::SessionPanic { frame: 12 }));
        let services = FleetServices::new(&FleetConfig {
            restart: RestartPolicy {
                max_restarts: 0,
                ..RestartPolicy::default()
            },
            ..FleetConfig::default()
        });
        let mut st = SessionState::new(&spec, &services);
        let mut ws = SolverWorkspace::new();
        silence_chaos_panics();
        let outcome = loop {
            match st.step_guarded(&mut ws) {
                StepOutcome::Progress => {}
                other => break other,
            }
        };
        assert_eq!(outcome, StepOutcome::Failed);
        assert_eq!(st.try_schedule_restart(), None, "no restart budget");
        let report = st.finish_quarantined();
        assert_eq!(report.outcome, SessionOutcome::Quarantined);
        assert_eq!(report.phase, SessionPhase::Quarantined);
        let failure = report.failure.expect("failure record");
        assert_eq!(failure.cause, FailureCause::Panic);
        assert_eq!(failure.frame, 12);
        assert!(failure.detail.contains("chaos: injected session panic"));
        assert_eq!(failure.restarts_before, 0);
    }

    #[test]
    fn restart_replays_to_clean_bits() {
        let seq = kitti_sequences()[3].truncated(2.5);
        let clean_spec = SessionSpec::new("s", seq.clone(), Priority::Normal);
        let services = FleetServices::new(&FleetConfig::default());
        let mut clean = SessionState::new(&clean_spec, &services);
        let mut ws = SolverWorkspace::new();
        loop {
            if let StepOutcome::Done = clean.step_guarded(&mut ws) {
                break;
            }
        }
        let clean_report = clean.finish();

        let chaotic_spec = SessionSpec::new("s", seq, Priority::Normal)
            .with_chaos(ChaosPlan::new(1).with(ChaosKind::SessionPanic { frame: 15 }));
        let mut chaotic = SessionState::new(&chaotic_spec, &services);
        silence_chaos_panics();
        let report = loop {
            match chaotic.step_guarded(&mut ws) {
                StepOutcome::Done => break chaotic.finish(),
                StepOutcome::Failed if chaotic.try_schedule_restart().is_none() => {
                    break chaotic.finish_quarantined();
                }
                _ => {}
            }
        };
        assert_eq!(report.outcome, SessionOutcome::Completed);
        assert_eq!(report.restarts, 1);
        // The restart replayed from the checkpoint; the one-shot chaos
        // event does not re-fire, so the final bits equal a clean run's.
        assert_eq!(report.digest(), clean_report.digest());
        clean_report.assert_bitwise_eq(&report);
    }
}
