//! A vehicle session: one VIO pipeline plus its runtime instance, stepped
//! frame-by-frame by the fleet scheduler.
//!
//! A session owns *all* of its mutable state — pipeline, sliding window,
//! iteration counter, watchdog — so the scheduler can migrate it freely
//! between workers: whichever worker holds the session's lock sees exactly
//! the state the previous quantum left behind. The only things a session
//! shares with its neighbours are immutable, pure-function caches
//! ([`CachedAcceleratorModel`], [`archytas_core::GatingCache`]), which is
//! why fleet execution is bitwise identical to running each session alone.

use std::sync::Arc;
use std::time::Instant;

use archytas_core::{GatingCache, IterPolicy, RuntimeSystem};
use archytas_dataset::{Frame, HealthState, PipelineConfig, SequenceSpec, VioPipeline};
use archytas_faults::FaultPlan;
use archytas_hw::{
    f32_linear_solver, AcceleratorConfig, AcceleratorModel, CachedAcceleratorModel, FpgaPlatform,
};
use archytas_mdfg::ProblemShape;
use archytas_slam::{FactorWeights, Pose, TrajectoryMetrics};

use crate::FleetConfig;

/// Scheduling priority of a session.
///
/// Priority only affects *when* a session's frames are processed (admission,
/// shedding, backpressure deferral) — never *what* they compute. A `Low`
/// session that completes produces the same bits as a `High` one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// First to be deferred under backpressure, only class that can be shed.
    Low,
    /// Default class: admitted in arrival order, never shed.
    Normal,
    /// Safety-critical vehicle: never shed, never deferred.
    High,
}

/// Description of one vehicle joining the fleet.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Display name (unique per fleet run).
    pub name: String,
    /// The sensor sequence this vehicle replays.
    pub sequence: SequenceSpec,
    /// Scheduling class.
    pub priority: Priority,
    /// Optional seeded fault plan applied to the sensor stream.
    pub fault_plan: Option<FaultPlan>,
}

impl SessionSpec {
    /// A fault-free session.
    pub fn new(name: impl Into<String>, sequence: SequenceSpec, priority: Priority) -> Self {
        Self {
            name: name.into(),
            sequence,
            priority,
            fault_plan: None,
        }
    }

    /// Attaches a seeded fault plan to the sensor stream.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }
}

/// How a session left the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionOutcome {
    /// Every frame was processed.
    Completed,
    /// Rejected by admission control before processing any frame.
    Shed,
}

/// Final per-session record, sufficient for a bitwise comparison against a
/// serial run of the same session alone.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Session name from the spec.
    pub name: String,
    /// Scheduling class from the spec.
    pub priority: Priority,
    /// Completion status.
    pub outcome: SessionOutcome,
    /// Frames pushed through the front-end.
    pub frames: usize,
    /// Windows optimized.
    pub windows: usize,
    /// Newest-keyframe estimate after each window (the deterministic
    /// output contract: compared bit-for-bit against a serial-alone run).
    pub estimates: Vec<Pose>,
    /// Iteration budget the runtime granted for each window.
    pub iterations: Vec<usize>,
    /// Total modelled accelerator latency (ms).
    pub modelled_latency_ms: f64,
    /// Total modelled energy at the gated power (mJ).
    pub modelled_energy_mj: f64,
    /// Trajectory RMSE (m).
    pub rmse_m: f64,
    /// Windows that closed in the `Degraded` ladder state.
    pub degraded_windows: usize,
    /// Windows for which the runtime watchdog held the full configuration.
    pub watchdog_windows: usize,
    /// Host wall-clock time per frame (ns). Timing-only: excluded from the
    /// determinism contract, pooled fleet-wide for latency percentiles.
    pub frame_wall_ns: Vec<u64>,
}

impl SessionReport {
    /// The empty report of a shed session.
    pub(crate) fn shed(spec: &SessionSpec) -> Self {
        Self {
            name: spec.name.clone(),
            priority: spec.priority,
            outcome: SessionOutcome::Shed,
            frames: 0,
            windows: 0,
            estimates: Vec::new(),
            iterations: Vec::new(),
            modelled_latency_ms: 0.0,
            modelled_energy_mj: 0.0,
            rmse_m: 0.0,
            degraded_windows: 0,
            watchdog_windows: 0,
            frame_wall_ns: Vec::new(),
        }
    }

    /// The deterministic payload as raw bits, one `[u64; 7]` per window
    /// (quaternion w,x,y,z then translation x,y,z).
    pub fn estimate_bits(&self) -> Vec<[u64; 7]> {
        self.estimates
            .iter()
            .map(|p| {
                [
                    p.rot.w.to_bits(),
                    p.rot.v.x().to_bits(),
                    p.rot.v.y().to_bits(),
                    p.rot.v.z().to_bits(),
                    p.trans.x().to_bits(),
                    p.trans.y().to_bits(),
                    p.trans.z().to_bits(),
                ]
            })
            .collect()
    }

    /// FNV-1a digest over every deterministic field — two runs of the same
    /// session agree on the digest iff they agree on every estimate bit,
    /// every iteration decision, and every modelled cost.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |word: u64| {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.windows as u64);
        for bits in self.estimate_bits() {
            bits.into_iter().for_each(&mut eat);
        }
        for &it in &self.iterations {
            eat(it as u64);
        }
        eat(self.modelled_latency_ms.to_bits());
        eat(self.modelled_energy_mj.to_bits());
        eat(self.rmse_m.to_bits());
        eat(self.degraded_windows as u64);
        eat(self.watchdog_windows as u64);
        h
    }

    /// Asserts bitwise equality of the deterministic payload with `other`,
    /// panicking with a window-level diagnostic on the first divergence.
    pub fn assert_bitwise_eq(&self, other: &Self) {
        assert_eq!(self.name, other.name);
        assert_eq!(self.outcome, other.outcome, "{}: outcome", self.name);
        assert_eq!(self.windows, other.windows, "{}: window count", self.name);
        assert_eq!(
            self.iterations, other.iterations,
            "{}: iteration schedule",
            self.name
        );
        for (w, (a, b)) in self
            .estimate_bits()
            .iter()
            .zip(other.estimate_bits().iter())
            .enumerate()
        {
            assert_eq!(a, b, "{}: estimate bits diverge at window {w}", self.name);
        }
        assert_eq!(
            self.modelled_latency_ms.to_bits(),
            other.modelled_latency_ms.to_bits(),
            "{}: modelled latency",
            self.name
        );
        assert_eq!(
            self.modelled_energy_mj.to_bits(),
            other.modelled_energy_mj.to_bits(),
            "{}: modelled energy",
            self.name
        );
        assert_eq!(
            self.rmse_m.to_bits(),
            other.rmse_m.to_bits(),
            "{}: rmse",
            self.name
        );
        assert_eq!(
            self.degraded_windows, other.degraded_windows,
            "{}: degraded windows",
            self.name
        );
        assert_eq!(
            self.watchdog_windows, other.watchdog_windows,
            "{}: watchdog windows",
            self.name
        );
    }
}

/// The immutable services every session shares: the accelerator latency
/// model, the gating-table cache, and the iteration policy. All values are
/// pure functions of their keys, so sharing them cannot change any
/// session's numerics — it only removes redundant work.
#[derive(Debug)]
pub struct FleetServices {
    /// Fleet-wide shared latency/energy model (exactly-once per shape).
    pub model: Arc<CachedAcceleratorModel>,
    /// Fleet-wide gating-LUT cache (exactly-once per deployment).
    pub gating: Arc<GatingCache>,
    /// Shared iteration policy (immutable lookup table).
    pub policy: Arc<IterPolicy>,
    design: AcceleratorConfig,
    platform: FpgaPlatform,
    latency_bound_ms: f64,
}

impl FleetServices {
    /// Builds the shared services for one fleet deployment.
    pub fn new(config: &FleetConfig) -> Self {
        Self {
            model: CachedAcceleratorModel::shared(AcceleratorModel::new(
                config.design,
                config.platform.clone(),
            )),
            gating: Arc::new(GatingCache::new()),
            policy: Arc::new(IterPolicy::default_table()),
            design: config.design,
            platform: config.platform.clone(),
            latency_bound_ms: config.latency_bound_ms,
        }
    }

    /// A per-session runtime instance drawing its gating table from the
    /// shared cache. The `IterCounter` and `RuntimeWatchdog` inside are
    /// private per-session state.
    pub fn runtime(&self) -> RuntimeSystem {
        self.gating.runtime(
            self.design,
            &ProblemShape::typical(),
            self.latency_bound_ms,
            &self.platform,
            Arc::clone(&self.policy),
        )
    }
}

/// The pipeline configuration every fleet session runs: the default VIO
/// stack with a Huber robust kernel, matching the fault-injection matrix so
/// faulted sessions stay well-conditioned.
pub fn fleet_pipeline_config() -> PipelineConfig {
    PipelineConfig {
        weights: FactorWeights::default().with_huber(0.004),
        ..PipelineConfig::default()
    }
}

/// Live state of one admitted session.
pub(crate) struct SessionState {
    name: String,
    priority: Priority,
    frames: Vec<Frame>,
    cursor: usize,
    pipeline: VioPipeline,
    runtime: RuntimeSystem,
    model: Arc<CachedAcceleratorModel>,
    metrics: TrajectoryMetrics,
    estimates: Vec<Pose>,
    iterations: Vec<usize>,
    modelled_latency_ms: f64,
    modelled_energy_mj: f64,
    degraded_windows: usize,
    watchdog_windows: usize,
    frame_wall_ns: Vec<u64>,
}

impl SessionState {
    /// Builds the session: replays the sequence spec into frames, applies
    /// the fault plan, and wires a fresh pipeline to a runtime drawing from
    /// the shared caches.
    pub(crate) fn new(spec: &SessionSpec, services: &FleetServices) -> Self {
        let mut frames = spec.sequence.build().frames;
        if let Some(plan) = &spec.fault_plan {
            frames = archytas_faults::apply(plan, &frames);
        }
        Self {
            name: spec.name.clone(),
            priority: spec.priority,
            frames,
            cursor: 0,
            pipeline: VioPipeline::new(fleet_pipeline_config()),
            runtime: services.runtime(),
            model: Arc::clone(&services.model),
            metrics: TrajectoryMetrics::new(),
            estimates: Vec::new(),
            iterations: Vec::new(),
            modelled_latency_ms: 0.0,
            modelled_energy_mj: 0.0,
            degraded_windows: 0,
            watchdog_windows: 0,
            frame_wall_ns: Vec::new(),
        }
    }

    pub(crate) fn priority(&self) -> Priority {
        self.priority
    }

    /// Processes the next frame (front-end, health-fed runtime decision,
    /// f32 accelerator solve). Returns `true` once the sequence is
    /// exhausted. Purely a function of the session's own state — no
    /// observable dependence on what other sessions are doing.
    pub(crate) fn step_frame(&mut self) -> bool {
        let t0 = Instant::now();
        let produced = self.pipeline.push_frame(&self.frames[self.cursor]);
        self.cursor += 1;
        if produced {
            let features = self.pipeline.window().num_landmarks();
            let healthy = !self.pipeline.health().is_suspect();
            let decision = self.runtime.step_with_health(features, healthy);
            if self.runtime.watchdog().engaged() {
                self.watchdog_windows += 1;
            }
            let result = self
                .pipeline
                .optimize_and_slide_with(decision.iterations, &f32_linear_solver);
            let shape = ProblemShape::from_workload(&result.workload);
            let latency_ms = self.model.window_latency_ms(&shape, decision.iterations);
            self.modelled_latency_ms += latency_ms;
            self.modelled_energy_mj += latency_ms * decision.gated_power_w;
            if result.health == HealthState::Degraded {
                self.degraded_windows += 1;
            }
            self.metrics
                .record(&result.estimate, &result.ground_truth, 0.0);
            self.estimates.push(result.estimate);
            self.iterations.push(decision.iterations);
        }
        self.frame_wall_ns
            .push(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        self.cursor >= self.frames.len()
    }

    /// Consumes the session into its final report.
    pub(crate) fn finish(self) -> SessionReport {
        SessionReport {
            name: self.name,
            priority: self.priority,
            outcome: SessionOutcome::Completed,
            frames: self.cursor,
            windows: self.estimates.len(),
            estimates: self.estimates,
            iterations: self.iterations,
            modelled_latency_ms: self.modelled_latency_ms,
            modelled_energy_mj: self.modelled_energy_mj,
            rmse_m: self.metrics.rmse(),
            degraded_windows: self.degraded_windows,
            watchdog_windows: self.watchdog_windows,
            frame_wall_ns: self.frame_wall_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archytas_dataset::kitti_sequences;

    #[test]
    fn digest_is_sensitive_to_every_deterministic_field() {
        let spec = SessionSpec::new("t", kitti_sequences()[0].truncated(2.0), Priority::Normal);
        let base = SessionReport::shed(&spec);
        let mut other = base.clone();
        assert_eq!(base.digest(), other.digest());
        other.rmse_m = 1.0e-300; // one bit of payload
        assert_ne!(base.digest(), other.digest());
        let mut third = base.clone();
        third.iterations.push(7);
        assert_ne!(base.digest(), third.digest());
        // Wall-clock timing must NOT feed the digest.
        let mut timed = base.clone();
        timed.frame_wall_ns.push(123);
        assert_eq!(base.digest(), timed.digest());
    }

    #[test]
    fn session_alone_produces_windows() {
        let spec = SessionSpec::new("alone", kitti_sequences()[3].truncated(2.5), Priority::High);
        let services = FleetServices::new(&FleetConfig::default());
        let mut st = SessionState::new(&spec, &services);
        while !st.step_frame() {}
        let report = st.finish();
        assert!(report.windows > 0);
        assert_eq!(report.frames, report.frame_wall_ns.len());
        assert_eq!(report.windows, report.estimates.len());
        assert!(report.rmse_m.is_finite());
        assert!(report.modelled_latency_ms > 0.0);
    }
}
