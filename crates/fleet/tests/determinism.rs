//! The fleet's hard contract: every session's output is bitwise identical
//! to running that session alone, serially — at any pool size, any
//! admission order, and under backpressure.

use archytas_dataset::{euroc_sequences, kitti_sequences};
use archytas_faults::{ChaosKind, ChaosPlan, FaultKind, FaultPlan};
use archytas_fleet::{
    run_fleet, run_session_alone, DeadlinePolicy, FailureCause, FleetConfig, Priority,
    RestartPolicy, SessionOutcome, SessionPhase, SessionReport, SessionSpec,
};
use std::collections::HashMap;

/// Installs (once) a panic hook that swallows injected-chaos panics but
/// forwards everything else, so assertion failures stay loud and tests
/// never race on hook ownership.
fn silence_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let chaos = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("chaos:"));
            if !chaos {
                default(info);
            }
        }));
    });
}

/// The standard 8-vehicle batch: cars and drones, mixed priorities, two
/// vehicles hitting sensor faults mid-sequence.
fn fleet_specs() -> Vec<SessionSpec> {
    let kitti = kitti_sequences();
    let euroc = euroc_sequences();
    vec![
        SessionSpec::new("car-0", kitti[0].truncated(2.5), Priority::High),
        SessionSpec::new("car-1", kitti[1].truncated(2.5), Priority::Normal),
        SessionSpec::new("car-2", kitti[2].truncated(2.5), Priority::Low),
        SessionSpec::new("drone-0", euroc[0].truncated(2.5), Priority::Normal),
        SessionSpec::new("drone-1", euroc[1].truncated(2.5), Priority::Low),
        SessionSpec::new("car-3", kitti[3].truncated(2.5), Priority::Normal),
        // Faults land at frames 24–28, so these need ≥ 4 s (10 Hz).
        SessionSpec::new("car-flaky", kitti[1].truncated(4.0), Priority::High)
            .with_faults(FaultPlan::new(11).with(FaultKind::VisionDropout, 24, 28)),
        SessionSpec::new("drone-flaky", euroc[0].truncated(4.0), Priority::Low)
            .with_faults(FaultPlan::new(13).with(FaultKind::ImuNan { probability: 0.3 }, 24, 27)),
    ]
}

fn base_config() -> FleetConfig {
    FleetConfig::default()
}

fn alone_reports(specs: &[SessionSpec]) -> HashMap<String, SessionReport> {
    specs
        .iter()
        .map(|s| (s.name.clone(), run_session_alone(s, &base_config())))
        .collect()
}

#[test]
fn fleet_matches_serial_alone_at_any_pool_size_and_admission_order() {
    let specs = fleet_specs();
    let alone = alone_reports(&specs);

    let mut reversed = specs.clone();
    reversed.reverse();

    for threads in [1usize, 2, 8] {
        for (order_name, order) in [("forward", &specs), ("reversed", &reversed)] {
            let config = FleetConfig {
                threads,
                ..base_config()
            };
            let report = run_fleet(order, &config);
            assert_eq!(report.threads, threads);
            assert_eq!(report.sessions.len(), order.len());
            for (spec, session) in order.iter().zip(&report.sessions) {
                assert_eq!(
                    session.outcome,
                    SessionOutcome::Completed,
                    "{} ({order_name}, {threads}t)",
                    spec.name
                );
                session.assert_bitwise_eq(&alone[&spec.name]);
            }
            // Faulted sessions really exercised the degradation ladder and
            // the runtime watchdog — identically in fleet and alone runs.
            let flaky = report
                .sessions
                .iter()
                .find(|s| s.name == "car-flaky")
                .unwrap();
            assert!(flaky.degraded_windows > 0, "fault plan had no effect");
            assert!(flaky.watchdog_windows > 0, "watchdog never engaged");
        }
    }
}

#[test]
fn shared_caches_are_filled_once_for_the_whole_fleet() {
    let specs = fleet_specs();
    let report = run_fleet(
        &specs,
        &FleetConfig {
            threads: 4,
            ..base_config()
        },
    );
    // One design fleet-wide ⇒ exactly one gating-LUT build, every other
    // session is a cache hit.
    assert_eq!(report.gating_builds, 1);
    assert_eq!(report.gating_hits, specs.len() - 1);
    // Every optimized window performs exactly one model lookup; the shared
    // model evaluates each distinct problem shape once and serves the rest
    // from cache.
    assert_eq!(
        report.model_evaluations + report.model_cache_hits,
        report.windows_processed
    );
    assert!(
        report.model_evaluations < report.windows_processed,
        "no cross-session model sharing happened ({} evaluations for {} windows)",
        report.model_evaluations,
        report.windows_processed
    );
    assert!(report.model_cache_hits > 0);
}

#[test]
fn backpressure_defers_low_priority_without_changing_outputs() {
    let kitti = kitti_sequences();
    let specs = vec![
        SessionSpec::new("hi-0", kitti[0].truncated(2.0), Priority::High),
        SessionSpec::new("lo-0", kitti[1].truncated(2.0), Priority::Low),
        SessionSpec::new("no-0", kitti[2].truncated(2.0), Priority::Normal),
        SessionSpec::new("lo-1", kitti[3].truncated(2.0), Priority::Low),
    ];
    let alone = alone_reports(&specs);
    let config = FleetConfig {
        threads: 2,
        defer_watermark: 1, // aggressive: park Low whenever anything else is runnable
        frames_per_quantum: 2,
        ..base_config()
    };
    let report = run_fleet(&specs, &config);
    assert!(
        report.scheduler.deferrals > 0,
        "watermark 1 with 4 sessions must actually defer"
    );
    for (spec, session) in specs.iter().zip(&report.sessions) {
        assert_eq!(session.outcome, SessionOutcome::Completed);
        session.assert_bitwise_eq(&alone[&spec.name]);
    }
}

#[test]
fn restart_ladder_is_deterministic_at_every_pool_size() {
    silence_chaos_panics();
    // car-3 panics at frame 15 but holds one restart: it must complete,
    // replaying from its checkpoint to the exact bits of a chaos-free run —
    // at every pool size and admission order, like everyone else.
    let mut specs = fleet_specs();
    let victim = 5; // car-3
    specs[victim] = specs[victim]
        .clone()
        .with_chaos(ChaosPlan::new(41).with(ChaosKind::SessionPanic { frame: 15 }));
    let alone = alone_reports(&fleet_specs()); // chaos-free reference bits

    let mut reversed = specs.clone();
    reversed.reverse();
    for threads in [1usize, 2, 8] {
        for order in [&specs, &reversed] {
            let report = run_fleet(
                order,
                &FleetConfig {
                    threads,
                    ..base_config()
                },
            );
            assert_eq!(report.quarantined_sessions, 0, "{threads}t");
            assert_eq!(report.session_restarts, 1, "{threads}t");
            assert!(report.scheduler.resurrections >= 1);
            for (spec, session) in order.iter().zip(&report.sessions) {
                assert_eq!(session.outcome, SessionOutcome::Completed, "{}", spec.name);
                session.assert_bitwise_eq(&alone[&spec.name]);
                if spec.name == "car-3" {
                    assert_eq!(session.restarts, 1);
                    assert_eq!(session.digest(), alone[&spec.name].digest());
                } else {
                    assert_eq!(session.restarts, 0);
                }
            }
        }
    }
}

#[test]
fn panic_without_restart_budget_quarantines_only_the_victim() {
    silence_chaos_panics();
    let mut specs = fleet_specs();
    specs[1] = specs[1]
        .clone()
        .with_chaos(ChaosPlan::new(7).with(ChaosKind::SessionPanic { frame: 10 }));
    let alone = alone_reports(&fleet_specs());
    let config = FleetConfig {
        restart: RestartPolicy {
            max_restarts: 0,
            ..RestartPolicy::default()
        },
        ..base_config()
    };
    for threads in [1usize, 2, 8] {
        let report = run_fleet(
            &specs,
            &FleetConfig {
                threads,
                ..config.clone()
            },
        );
        assert_eq!(report.quarantined_sessions, 1, "{threads}t");
        let victim = &report.sessions[1];
        assert_eq!(victim.outcome, SessionOutcome::Quarantined);
        assert_eq!(victim.phase, SessionPhase::Quarantined);
        let failure = victim.failure.as_ref().expect("failure record");
        assert_eq!(failure.cause, FailureCause::Panic);
        assert_eq!(failure.frame, 10);
        assert!(failure.detail.contains("chaos: injected session panic"));
        // Every non-faulted session keeps its exact serial-alone bits.
        for (spec, session) in specs.iter().zip(&report.sessions) {
            if spec.name != "car-1" {
                assert_eq!(session.outcome, SessionOutcome::Completed, "{}", spec.name);
                session.assert_bitwise_eq(&alone[&spec.name]);
            }
        }
    }
}

#[test]
fn stall_escalates_on_the_logical_clock_identically_at_every_pool_size() {
    silence_chaos_panics();
    // An 11-round stall against a 4-round budget and a 1-miss quarantine
    // threshold: the watchdog must quarantine deterministically (logical
    // clock), with the same verdict and the same completed-window prefix
    // at every pool size, in fleet and alone.
    let mut specs = fleet_specs();
    specs[3] = specs[3]
        .clone()
        .with_chaos(ChaosPlan::new(5).with(ChaosKind::StepStall {
            frame: 14,
            rounds: 11,
        }));
    let config = FleetConfig {
        deadline: DeadlinePolicy {
            multiplier: 4.0,
            misses_to_quarantine: 1,
            ..DeadlinePolicy::default()
        },
        restart: RestartPolicy {
            max_restarts: 0,
            ..RestartPolicy::default()
        },
        ..base_config()
    };
    let alone_clean = alone_reports(&fleet_specs());
    let alone_stalled = run_session_alone(&specs[3], &config);
    assert_eq!(alone_stalled.outcome, SessionOutcome::Quarantined);
    assert_eq!(
        alone_stalled.failure.as_ref().map(|f| f.cause),
        Some(FailureCause::DeadlineMiss)
    );
    assert!(alone_stalled.deadline_misses >= 1);
    for threads in [1usize, 2, 8] {
        let report = run_fleet(
            &specs,
            &FleetConfig {
                threads,
                ..config.clone()
            },
        );
        let victim = &report.sessions[3];
        assert_eq!(victim.outcome, SessionOutcome::Quarantined, "{threads}t");
        victim.assert_bitwise_eq(&alone_stalled);
        assert_eq!(victim.deadline_misses, alone_stalled.deadline_misses);
        assert_eq!(report.deadline_misses, alone_stalled.deadline_misses);
        for (spec, session) in specs.iter().zip(&report.sessions) {
            if spec.name != "drone-0" {
                session.assert_bitwise_eq(&alone_clean[&spec.name]);
            }
        }
    }
}

#[test]
fn stalls_and_jitter_within_budget_never_change_bits() {
    // Chaos that only shapes timing (a short stall under the deadline
    // budget, worker jitter) must leave every output bit — including the
    // victim's — identical to the chaos-free run.
    let mut specs = fleet_specs();
    specs[0] = specs[0].clone().with_chaos(
        ChaosPlan::new(9)
            .with(ChaosKind::StepStall {
                frame: 8,
                rounds: 3,
            })
            .with(ChaosKind::WorkerJitter { max_spins: 400 }),
    );
    let alone = alone_reports(&fleet_specs());
    for threads in [1usize, 4] {
        let report = run_fleet(
            &specs,
            &FleetConfig {
                threads,
                ..base_config()
            },
        );
        assert_eq!(report.quarantined_sessions, 0);
        assert_eq!(report.deadline_misses, 0, "3 rounds vs 8-round budget");
        for (spec, session) in specs.iter().zip(&report.sessions) {
            assert_eq!(session.outcome, SessionOutcome::Completed, "{}", spec.name);
            session.assert_bitwise_eq(&alone[&spec.name]);
        }
    }
}

#[test]
fn admission_sheds_low_priority_and_leaves_the_rest_bit_identical() {
    let kitti = kitti_sequences();
    let specs = vec![
        SessionSpec::new("keep-0", kitti[0].truncated(2.0), Priority::Normal),
        SessionSpec::new("keep-1", kitti[1].truncated(2.0), Priority::Normal),
        SessionSpec::new("keep-2", kitti[2].truncated(2.0), Priority::Low),
        SessionSpec::new("shed-0", kitti[3].truncated(2.0), Priority::Low),
        SessionSpec::new("keep-3", kitti[0].truncated(2.0), Priority::High),
    ];
    let config = FleetConfig {
        threads: 2,
        max_active: 2,
        shed_watermark: 1,
        ..base_config()
    };
    let report = run_fleet(&specs, &config);
    let by_name: HashMap<_, _> = report
        .sessions
        .iter()
        .map(|s| (s.name.as_str(), s))
        .collect();
    assert_eq!(by_name["shed-0"].outcome, SessionOutcome::Shed);
    assert!(by_name["shed-0"].estimates.is_empty());
    for name in ["keep-0", "keep-1", "keep-2", "keep-3"] {
        assert_eq!(by_name[name].outcome, SessionOutcome::Completed);
        let spec = specs.iter().find(|s| s.name == name).unwrap();
        by_name[name].assert_bitwise_eq(&run_session_alone(spec, &base_config()));
    }
}

/// The churn schedule: late joiners on the quanta clock, an early leaver,
/// mid-run priority flips in both directions, one quarantined-then-
/// restarted session that completes, and one double-panic session whose
/// quarantine is terminal.
fn churn_specs() -> Vec<SessionSpec> {
    let kitti = kitti_sequences();
    let euroc = euroc_sequences();
    vec![
        SessionSpec::new("c-anchor", kitti[0].truncated(2.5), Priority::High),
        SessionSpec::new("c-leaver", kitti[1].truncated(2.5), Priority::Normal).leaving_after(14),
        SessionSpec::new("c-flipper", kitti[2].truncated(2.5), Priority::High)
            .with_priority_flip(8, Priority::Low)
            .with_priority_flip(16, Priority::High),
        SessionSpec::new("d-late", euroc[0].truncated(2.5), Priority::Normal).arriving_at(10),
        SessionSpec::new("c-restarted", kitti[3].truncated(2.5), Priority::Normal)
            .with_chaos(ChaosPlan::new(31).with(ChaosKind::SessionPanic { frame: 12 })),
        SessionSpec::new("d-doomed", euroc[1].truncated(2.5), Priority::Low)
            .arriving_at(6)
            .with_chaos(
                ChaosPlan::new(32)
                    .with(ChaosKind::SessionPanic { frame: 9 })
                    .with(ChaosKind::SessionPanic { frame: 19 }),
            ),
        SessionSpec::new("c-late-flip", kitti[4].truncated(2.5), Priority::Low)
            .arriving_at(20)
            .leaving_after(20)
            .with_priority_flip(10, Priority::High),
    ]
}

#[test]
fn churn_schedule_matches_serial_alone_across_pools_and_orders() {
    silence_chaos_panics();
    let specs = churn_specs();
    let alone = alone_reports(&specs);

    // The serial references already pin the churn semantics: the leaver's
    // stream is truncated, the restarted session replays to clean bits,
    // the double-panic session quarantines terminally.
    assert_eq!(alone["c-leaver"].frames, 14);
    assert_eq!(alone["c-restarted"].outcome, SessionOutcome::Completed);
    assert_eq!(alone["c-restarted"].restarts, 1);
    assert_eq!(alone["d-doomed"].outcome, SessionOutcome::Quarantined);
    assert_eq!(alone["d-doomed"].restarts, 1);

    let mut reversed = specs.clone();
    reversed.reverse();
    let mut frozen: Option<HashMap<String, u64>> = None;
    for threads in [1usize, 2, 8] {
        for (order_name, order) in [("forward", &specs), ("reversed", &reversed)] {
            let config = FleetConfig {
                threads,
                ..base_config()
            };
            let report = run_fleet(order, &config);
            for (spec, session) in order.iter().zip(&report.sessions) {
                session.assert_bitwise_eq(&alone[&spec.name]);
            }
            let quarantined: Vec<&str> = report
                .sessions
                .iter()
                .filter(|s| s.outcome == SessionOutcome::Quarantined)
                .map(|s| s.name.as_str())
                .collect();
            assert_eq!(
                quarantined,
                ["d-doomed"],
                "exact quarantine set ({order_name}, {threads}t)"
            );
            assert_eq!(report.session_restarts, 2, "{order_name}, {threads}t");
            // Digests must also be identical *across* pool sizes and
            // admission orders, not only against the serial reference.
            let digests: HashMap<String, u64> = report
                .sessions
                .iter()
                .map(|s| (s.name.clone(), s.digest()))
                .collect();
            match &frozen {
                None => frozen = Some(digests),
                Some(f) => assert_eq!(*f, digests, "{order_name}, {threads}t"),
            }
        }
    }
}
