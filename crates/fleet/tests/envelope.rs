//! Power-envelope admission: a fleet-wide watt budget sheds Low and
//! defers Normal sessions *before* queue watermarks engage — and because
//! the envelope is priced during serial admission planning, the decision
//! set is identical at every pool size, and every surviving session keeps
//! its exact serial-alone bits.

use archytas_dataset::{euroc_sequences, kitti_sequences};
use archytas_fleet::{
    run_fleet, run_session_alone, FleetConfig, PowerEnvelope, Priority, SessionOutcome, SessionSpec,
};
use std::collections::HashMap;

/// A budget that fits exactly `n` concurrent sessions of the default
/// deployed design (HIGH_PERF on zc706), with a sliver of headroom so
/// float pricing can't flap on the boundary.
fn watts_for(n: usize, config: &FleetConfig) -> f64 {
    let draw = PowerEnvelope::new(f64::INFINITY, &config.design, &config.platform).session_draw_w;
    n as f64 * draw + 1e-9
}

/// Six sessions, mixed classes, arrival order chosen so the envelope
/// boundary lands mid-batch.
fn envelope_specs() -> Vec<SessionSpec> {
    let kitti = kitti_sequences();
    let euroc = euroc_sequences();
    vec![
        SessionSpec::new("hi-0", kitti[0].truncated(2.0), Priority::High),
        SessionSpec::new("no-0", kitti[1].truncated(2.0), Priority::Normal),
        SessionSpec::new("lo-0", kitti[2].truncated(2.0), Priority::Low),
        SessionSpec::new("no-1", euroc[0].truncated(2.0), Priority::Normal),
        SessionSpec::new("lo-1", kitti[3].truncated(2.0), Priority::Low),
        SessionSpec::new("hi-1", euroc[1].truncated(2.0), Priority::High),
    ]
}

#[test]
fn tight_envelope_sheds_the_same_sessions_at_every_pool_size() {
    let specs = envelope_specs();
    let base = FleetConfig::default();
    let config = FleetConfig {
        power_envelope_w: watts_for(2, &base),
        ..base.clone()
    };
    // Serial-alone references bypass admission, so the envelope is
    // irrelevant to the bits a surviving session must reproduce.
    let alone: HashMap<String, _> = specs
        .iter()
        .map(|s| (s.name.clone(), run_session_alone(s, &base)))
        .collect();

    let mut reports = Vec::new();
    for threads in [1usize, 4] {
        let report = run_fleet(
            &specs,
            &FleetConfig {
                threads,
                ..config.clone()
            },
        );
        // Budget fits 2: hi-0 and no-0 admit; both Lows shed; no-1 defers;
        // hi-1 (safety-critical) admits past the budget.
        assert_eq!(report.envelope.capacity(), 2, "{threads}t");
        assert_eq!(report.shed_sessions, 2, "{threads}t");
        assert_eq!(report.deferred_sessions, 1, "{threads}t");
        assert!(
            report.scheduler.envelope_deferrals >= 1,
            "{threads}t: deferred session never routed through the parked queue"
        );
        let by_name: HashMap<_, _> = report
            .sessions
            .iter()
            .map(|s| (s.name.clone(), s.clone()))
            .collect();
        for name in ["lo-0", "lo-1"] {
            assert_eq!(by_name[name].outcome, SessionOutcome::Shed, "{threads}t");
            assert!(by_name[name].estimates.is_empty());
        }
        for name in ["hi-0", "no-0", "no-1", "hi-1"] {
            assert_eq!(
                by_name[name].outcome,
                SessionOutcome::Completed,
                "{name} ({threads}t)"
            );
            by_name[name].assert_bitwise_eq(&alone[name]);
        }
        reports.push(report);
    }

    // The folded aggregates — and the watts they imply — are byte-identical
    // between the 1-worker and 4-worker runs.
    let (one, four) = (&reports[0], &reports[1]);
    assert_eq!(one.telemetry, four.telemetry);
    assert_eq!(one.fleet_power_w.to_bits(), four.fleet_power_w.to_bits());
    assert!(one.fleet_power_w > 0.0);
    // Shed sessions contribute nothing: only the four survivors fold in.
    assert_eq!(one.telemetry.fleet.sessions, 4);
}

#[test]
fn sub_single_session_budget_still_serves_high_priority() {
    let kitti = kitti_sequences();
    let specs = vec![
        SessionSpec::new("lo", kitti[0].truncated(1.5), Priority::Low),
        SessionSpec::new("no", kitti[1].truncated(1.5), Priority::Normal),
        SessionSpec::new("hi", kitti[2].truncated(1.5), Priority::High),
    ];
    let base = FleetConfig::default();
    let config = FleetConfig {
        // Below one session's draw: capacity 0.
        power_envelope_w: watts_for(1, &base) / 2.0,
        ..base.clone()
    };
    let alone: HashMap<String, _> = specs
        .iter()
        .map(|s| (s.name.clone(), run_session_alone(s, &base)))
        .collect();
    for threads in [1usize, 2] {
        let report = run_fleet(
            &specs,
            &FleetConfig {
                threads,
                ..config.clone()
            },
        );
        assert_eq!(report.envelope.capacity(), 0, "{threads}t");
        let by_name: HashMap<_, _> = report
            .sessions
            .iter()
            .map(|s| (s.name.clone(), s))
            .collect();
        assert_eq!(by_name["lo"].outcome, SessionOutcome::Shed, "{threads}t");
        for name in ["no", "hi"] {
            assert_eq!(
                by_name[name].outcome,
                SessionOutcome::Completed,
                "{name} ({threads}t)"
            );
            by_name[name].assert_bitwise_eq(&alone[name]);
        }
        // Normal rode the deferred path; High started immediately.
        assert_eq!(report.deferred_sessions, 1, "{threads}t");
    }
}

#[test]
fn unlimited_envelope_changes_nothing() {
    let specs = envelope_specs();
    let base = FleetConfig::default();
    let explicit = run_fleet(
        &specs,
        &FleetConfig {
            power_envelope_w: f64::INFINITY,
            threads: 2,
            ..base.clone()
        },
    );
    assert_eq!(explicit.shed_sessions, 0);
    assert_eq!(explicit.deferred_sessions, 0);
    assert_eq!(explicit.scheduler.envelope_deferrals, 0);
    assert!(!explicit.envelope.is_limited());
    for session in &explicit.sessions {
        assert_eq!(session.outcome, SessionOutcome::Completed);
    }
}
