//! No cross-session leakage through the runtime layer: `IterCounter`,
//! `RuntimeWatchdog`, and full `RuntimeSystem` instances produce the same
//! decision streams whether sessions step alone or interleaved in any
//! order — including when every session draws its gating table and policy
//! from one shared `GatingCache`.

use archytas_core::{GatingCache, IterCounter, IterPolicy, RuntimeDecision, RuntimeSystem};
use archytas_dataset::kitti_sequences;
use archytas_faults::{ChaosKind, ChaosPlan};
use archytas_fleet::{
    run_fleet, run_session_alone, FleetConfig, Priority, SessionOutcome, SessionSpec,
};
use archytas_hw::{FpgaPlatform, HIGH_PERF};
use archytas_mdfg::ProblemShape;

/// Per-session synthetic workload: (feature count, healthy?) per window.
/// Each session has a distinct rhythm so leakage would be visible; session
/// 1 goes unhealthy mid-stream to exercise the watchdog.
fn streams() -> Vec<Vec<(usize, bool)>> {
    (0..4)
        .map(|s| {
            (0..40)
                .map(|w| {
                    let features = 40 + 37 * s + (w * (7 + s)) % 211;
                    let healthy = !(s == 1 && (12..18).contains(&w));
                    (features, healthy)
                })
                .collect()
        })
        .collect()
}

fn fresh_runtime(cache: Option<&GatingCache>) -> RuntimeSystem {
    let shape = ProblemShape::typical();
    let platform = FpgaPlatform::zc706();
    match cache {
        Some(c) => c.runtime(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        ),
        None => RuntimeSystem::new(
            HIGH_PERF,
            &shape,
            2.5,
            &platform,
            IterPolicy::default_table(),
        ),
    }
}

/// Decision stream of one session stepping alone, plus per-window watchdog
/// engagement.
fn alone_stream(stream: &[(usize, bool)]) -> Vec<(RuntimeDecision, bool)> {
    let mut rt = fresh_runtime(None);
    stream
        .iter()
        .map(|&(f, h)| {
            let d = rt.step_with_health(f, h);
            (d, rt.watchdog().engaged())
        })
        .collect()
}

/// Steps all sessions under an arbitrary interleave order given by
/// `schedule` (a sequence of session indices; each session consumes its
/// own stream in order).
fn interleaved(
    streams: &[Vec<(usize, bool)>],
    schedule: impl Iterator<Item = usize>,
    cache: Option<&GatingCache>,
) -> Vec<Vec<(RuntimeDecision, bool)>> {
    let mut runtimes: Vec<RuntimeSystem> = streams.iter().map(|_| fresh_runtime(cache)).collect();
    let mut cursors = vec![0usize; streams.len()];
    let mut out: Vec<Vec<(RuntimeDecision, bool)>> = streams
        .iter()
        .map(|s| Vec::with_capacity(s.len()))
        .collect();
    for s in schedule {
        if cursors[s] >= streams[s].len() {
            continue;
        }
        let (f, h) = streams[s][cursors[s]];
        cursors[s] += 1;
        let d = runtimes[s].step_with_health(f, h);
        out[s].push((d, runtimes[s].watchdog().engaged()));
    }
    assert!(
        cursors.iter().zip(streams).all(|(c, s)| *c == s.len()),
        "schedule must drain every stream"
    );
    out
}

#[test]
fn round_robin_interleaving_matches_alone() {
    let streams = streams();
    let expected: Vec<_> = streams.iter().map(|s| alone_stream(s)).collect();
    let n = streams.len();
    let total: usize = streams.iter().map(Vec::len).sum();
    let schedule = (0..total * n).map(move |i| i % n);
    let got = interleaved(&streams, schedule, None);
    assert_eq!(got, expected);
}

#[test]
fn bursty_and_skewed_interleavings_match_alone() {
    let streams = streams();
    let expected: Vec<_> = streams.iter().map(|s| alone_stream(s)).collect();
    // Bursty: drain session 3 fully, then 5-window bursts of the rest in a
    // rotating pattern.
    let mut schedule = vec![3usize; streams[3].len()];
    for round in 0..streams.iter().map(Vec::len).max().unwrap() {
        for s in [1usize, 0, 2] {
            for _ in 0..5 {
                let _ = round;
                schedule.push(s);
            }
        }
    }
    let got = interleaved(&streams, schedule.into_iter(), None);
    assert_eq!(got, expected);
}

#[test]
fn shared_gating_cache_interleaving_matches_owned_alone() {
    // All sessions draw from ONE GatingCache (the fleet configuration);
    // decisions must still be bitwise those of private runtimes.
    let streams = streams();
    let expected: Vec<_> = streams.iter().map(|s| alone_stream(s)).collect();
    let cache = GatingCache::new();
    let n = streams.len();
    let total: usize = streams.iter().map(Vec::len).sum();
    let schedule = (0..total * n).map(move |i| i % n);
    let got = interleaved(&streams, schedule, Some(&cache));
    assert_eq!(got, expected);
    assert_eq!(cache.builds(), 1, "one deployment, one table");
    assert_eq!(cache.hits(), streams.len() - 1);
}

#[test]
fn watchdog_engagement_never_leaks_between_sessions() {
    let streams = streams();
    let n = streams.len();
    let total: usize = streams.iter().map(Vec::len).sum();
    let schedule = (0..total * n).map(move |i| i % n);
    let got = interleaved(&streams, schedule, None);
    // Session 1 is the only unhealthy stream: it must engage its watchdog,
    // and no other session may ever see an engaged watchdog.
    assert!(got[1].iter().any(|(_, engaged)| *engaged));
    for (s, decisions) in got.iter().enumerate() {
        if s != 1 {
            assert!(
                decisions.iter().all(|(_, engaged)| !*engaged),
                "session {s} caught session 1's watchdog"
            );
        }
    }
}

#[test]
fn racing_panics_on_a_saturated_pool_leave_survivors_bit_exact() {
    // Unwind-safety under pressure: four sessions panic at *different*
    // frames on an 8-worker pool with single-frame quanta — panics racing
    // each other, racing steals, and racing completions. Every panic must
    // be caught inside the slot's critical section (no poisoned locks, no
    // worker death), quarantine exactly its own session, and leave every
    // survivor's bits untouched.
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let chaos = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.starts_with("chaos:"));
            if !chaos {
                default(info);
            }
        }));
    });
    let kitti = kitti_sequences();
    let specs: Vec<SessionSpec> = (0..8)
        .map(|i| {
            let spec = SessionSpec::new(
                format!("s-{i}"),
                kitti[i % 4].truncated(2.5),
                Priority::Normal,
            );
            if i % 2 == 0 {
                // Panic frames spread across the sequence so the unwinds
                // interleave with healthy sessions' quanta.
                spec.with_chaos(
                    ChaosPlan::new(100 + i as u64)
                        .with(ChaosKind::SessionPanic { frame: 5 + 3 * i }),
                )
            } else {
                spec
            }
        })
        .collect();
    let config = FleetConfig {
        threads: 8,
        frames_per_quantum: 1, // maximize interleaving pressure
        restart: archytas_fleet::RestartPolicy {
            max_restarts: 0,
            ..archytas_fleet::RestartPolicy::default()
        },
        ..FleetConfig::default()
    };
    let report = run_fleet(&specs, &config);
    assert_eq!(report.quarantined_sessions, 4);
    for (i, (spec, session)) in specs.iter().zip(&report.sessions).enumerate() {
        if i % 2 == 0 {
            assert_eq!(
                session.outcome,
                SessionOutcome::Quarantined,
                "{}",
                spec.name
            );
            let failure = session.failure.as_ref().expect("failure record");
            assert_eq!(failure.frame, 5 + 3 * i, "{}", spec.name);
        } else {
            assert_eq!(session.outcome, SessionOutcome::Completed, "{}", spec.name);
            session.assert_bitwise_eq(&run_session_alone(spec, &FleetConfig::default()));
        }
    }
}

#[test]
fn iter_counters_debounce_independently_under_interleaving() {
    // Two counters fed different target streams, stepped interleaved; each
    // must match a privately-stepped twin exactly.
    let targets_a = [10usize, 4, 4, 4, 4, 9, 9, 2, 2, 2, 2, 2, 10, 10];
    let targets_b = [3usize, 3, 8, 8, 8, 1, 1, 1, 6, 6, 6, 6, 10, 2];
    let alone = |targets: &[usize]| {
        let mut c = IterCounter::new(10);
        targets.iter().map(|&t| c.observe(t)).collect::<Vec<_>>()
    };
    let (ea, eb) = (alone(&targets_a), alone(&targets_b));
    let (mut ca, mut cb) = (IterCounter::new(10), IterCounter::new(10));
    let (mut ga, mut gb) = (Vec::new(), Vec::new());
    for i in 0..targets_a.len() {
        // Deliberately uneven order: b twice every third step.
        ga.push(ca.observe(targets_a[i]));
        gb.push(cb.observe(targets_b[i]));
        if i % 3 == 0 {
            // Re-reading state must not advance the other counter.
            let _ = ca.current();
            let _ = cb.current();
        }
    }
    assert_eq!(ga, ea);
    assert_eq!(gb, eb);
}
