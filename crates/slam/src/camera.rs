//! Pinhole camera model.
//!
//! Visual observations are kept in *normalized image coordinates*
//! (`x = (u − cx)/fx`), the convention used by VINS-style MAP estimators:
//! the visual residual is then measured on the normalized plane and the
//! intrinsics only matter at observation-generation time.

use crate::geometry::Vec3;

/// Pinhole camera intrinsics (no distortion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinholeCamera {
    /// Focal length in pixels (x).
    pub fx: f64,
    /// Focal length in pixels (y).
    pub fy: f64,
    /// Principal point (x).
    pub cx: f64,
    /// Principal point (y).
    pub cy: f64,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
}

impl PinholeCamera {
    /// A KITTI-like grayscale camera (≈ 1241×376, f ≈ 718).
    pub fn kitti_like() -> Self {
        Self {
            fx: 718.856,
            fy: 718.856,
            cx: 607.19,
            cy: 185.22,
            width: 1241,
            height: 376,
        }
    }

    /// A EuRoC-like VGA camera (752×480, f ≈ 458).
    pub fn euroc_like() -> Self {
        Self {
            fx: 458.654,
            fy: 457.296,
            cx: 367.215,
            cy: 248.375,
            width: 752,
            height: 480,
        }
    }

    /// Projects a camera-frame point to pixel coordinates, or `None` when the
    /// point is behind the camera or lands outside the image.
    pub fn project(&self, p_cam: &Vec3) -> Option<[f64; 2]> {
        if p_cam.z() <= 1e-6 {
            return None;
        }
        let u = self.fx * p_cam.x() / p_cam.z() + self.cx;
        let v = self.fy * p_cam.y() / p_cam.z() + self.cy;
        if u < 0.0 || u >= f64::from(self.width) || v < 0.0 || v >= f64::from(self.height) {
            return None;
        }
        Some([u, v])
    }

    /// Projects to normalized image coordinates (`z = 1` plane), or `None`
    /// when the point is behind the camera.
    pub fn project_normalized(p_cam: &Vec3) -> Option<[f64; 2]> {
        if p_cam.z() <= 1e-6 {
            return None;
        }
        Some([p_cam.x() / p_cam.z(), p_cam.y() / p_cam.z()])
    }

    /// Converts pixel coordinates to normalized image coordinates.
    pub fn pixel_to_normalized(&self, uv: [f64; 2]) -> [f64; 2] {
        [(uv[0] - self.cx) / self.fx, (uv[1] - self.cy) / self.fy]
    }

    /// The bearing vector `[x, y, 1]` of a normalized observation.
    pub fn bearing(normalized: [f64; 2]) -> Vec3 {
        Vec3::new(normalized[0], normalized[1], 1.0)
    }

    /// Field of view half-angle in radians (horizontal).
    pub fn half_fov_x(&self) -> f64 {
        (f64::from(self.width) / (2.0 * self.fx)).atan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_center() {
        let cam = PinholeCamera::euroc_like();
        let p = Vec3::new(0.0, 0.0, 5.0);
        let uv = cam.project(&p).unwrap();
        assert!((uv[0] - cam.cx).abs() < 1e-12);
        assert!((uv[1] - cam.cy).abs() < 1e-12);
    }

    #[test]
    fn behind_camera_rejected() {
        let cam = PinholeCamera::kitti_like();
        assert!(cam.project(&Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(PinholeCamera::project_normalized(&Vec3::new(1.0, 1.0, 0.0)).is_none());
    }

    #[test]
    fn out_of_frame_rejected() {
        let cam = PinholeCamera::euroc_like();
        // A point far to the side at small depth projects off-image.
        assert!(cam.project(&Vec3::new(10.0, 0.0, 1.0)).is_none());
    }

    #[test]
    fn pixel_normalized_roundtrip() {
        let cam = PinholeCamera::kitti_like();
        let p = Vec3::new(1.0, -0.5, 4.0);
        let uv = cam.project(&p).unwrap();
        let n = cam.pixel_to_normalized(uv);
        let expected = PinholeCamera::project_normalized(&p).unwrap();
        assert!((n[0] - expected[0]).abs() < 1e-12);
        assert!((n[1] - expected[1]).abs() < 1e-12);
    }

    #[test]
    fn bearing_has_unit_z() {
        let b = PinholeCamera::bearing([0.3, -0.2]);
        assert_eq!(b.z(), 1.0);
        assert_eq!(b.x(), 0.3);
    }

    #[test]
    fn fov_is_plausible() {
        let cam = PinholeCamera::euroc_like();
        let fov = cam.half_fov_x().to_degrees() * 2.0;
        assert!(fov > 60.0 && fov < 100.0, "fov {fov}");
    }
}
