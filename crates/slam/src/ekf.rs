//! Error-state EKF visual–inertial odometry — the *filtering* class of
//! localization algorithms the paper contrasts MAP against (Sec. 2.1/2.2:
//! "Comparing to the other popular class of SLAM algorithm based on
//! non-linear filtering, MAP is more robust in long-term localization and
//! is more efficient, as quantified by accuracy per unit of computing
//! time").
//!
//! This is a deliberately standard lightweight filter: a 15-dim error state
//! `[δθ, δp, δv, δbg, δba]` propagated through the IMU and updated by
//! reprojection residuals against landmarks fixed at their first-sighting
//! initialization. It exists to back the paper's accuracy-per-compute
//! argument with an executable comparison (`sec2_2` experiment), not to be
//! a state-of-the-art MSCKF.

use crate::factors::{BA, BG, THETA, TRANS, VEL};
use crate::geometry::{Mat3, Pose, Quat, Vec3};
use crate::imu::{ImuSample, GRAVITY};
use crate::window::{KeyframeState, STATE_DIM};
use archytas_math::{DMat, DVec};
use std::collections::HashMap;

/// EKF noise configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EkfConfig {
    /// Gyro white-noise density (rad/s).
    pub gyro_noise: f64,
    /// Accelerometer white-noise density (m/s²).
    pub accel_noise: f64,
    /// Gyro bias random walk (rad/s per √s).
    pub gyro_bias_walk: f64,
    /// Accelerometer bias random walk (m/s² per √s).
    pub accel_bias_walk: f64,
    /// Visual measurement noise on the normalized plane (1σ).
    pub visual_noise: f64,
    /// Innovation gate in standard deviations.
    pub gate_sigma: f64,
}

impl Default for EkfConfig {
    fn default() -> Self {
        Self {
            gyro_noise: 0.002,
            accel_noise: 0.02,
            gyro_bias_walk: 4e-4,
            accel_bias_walk: 4e-3,
            visual_noise: 1.0 / 460.0,
            gate_sigma: 5.0,
        }
    }
}

/// Error-state EKF visual–inertial estimator.
#[derive(Debug, Clone)]
pub struct EkfVio {
    state: KeyframeState,
    /// 15×15 error-state covariance.
    cov: DMat,
    /// Landmark map: world positions fixed at initialization.
    map: HashMap<u64, Vec3>,
    config: EkfConfig,
    /// Scalar operations performed so far (the accuracy-per-compute
    /// denominator).
    ops: u64,
    updates_applied: usize,
    updates_gated: usize,
}

impl EkfVio {
    /// Creates a filter at the given initial state with a small initial
    /// uncertainty.
    pub fn new(initial: KeyframeState, config: EkfConfig) -> Self {
        let mut cov = DMat::zeros(STATE_DIM, STATE_DIM);
        for i in 0..STATE_DIM {
            let sigma = match i {
                i if i < 3 => 1e-4, // attitude
                i if i < 6 => 1e-4, // position
                i if i < 9 => 1e-2, // velocity
                _ => 1e-3,          // biases
            };
            cov.set(i, i, sigma);
        }
        Self {
            state: initial,
            cov,
            map: HashMap::new(),
            config,
            ops: 0,
            updates_applied: 0,
            updates_gated: 0,
        }
    }

    /// Current state estimate.
    pub fn state(&self) -> &KeyframeState {
        &self.state
    }

    /// Current pose estimate.
    pub fn pose(&self) -> Pose {
        self.state.pose
    }

    /// Scalar operations performed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// `(applied, gated)` visual update counters.
    pub fn update_stats(&self) -> (usize, usize) {
        (self.updates_applied, self.updates_gated)
    }

    /// Number of mapped landmarks.
    pub fn map_len(&self) -> usize {
        self.map.len()
    }

    /// Propagates nominal state and covariance through a batch of IMU
    /// samples.
    pub fn propagate(&mut self, samples: &[ImuSample]) {
        for s in samples {
            self.propagate_one(s);
        }
    }

    fn propagate_one(&mut self, s: &ImuSample) {
        let dt = s.dt;
        let w = s.gyro - self.state.bg;
        let a = s.accel - self.state.ba;
        let r = self.state.pose.rot.to_mat();
        let a_world = r.mul_vec(&a) + GRAVITY;

        // --- nominal integration ---
        let new_rot = self.state.pose.rot.mul(&Quat::exp(&(w * dt))).normalized();
        self.state.pose.trans =
            self.state.pose.trans + self.state.velocity * dt + a_world * (0.5 * dt * dt);
        self.state.velocity = self.state.velocity + a_world * dt;
        self.state.pose.rot = new_rot;
        self.state.timestamp += dt;

        // --- covariance: P ← F·P·Fᵀ + Q with F = I + A·dt ---
        let mut f = DMat::identity(STATE_DIM);
        let neg_wx = w.skew().scale(-dt);
        add_block(&mut f, THETA, THETA, &neg_wx);
        add_identity_block(&mut f, THETA, BG, -dt);
        add_identity_block(&mut f, TRANS, VEL, dt);
        let neg_rax = (r * a.skew()).scale(-dt);
        add_block(&mut f, VEL, THETA, &neg_rax);
        add_block(&mut f, VEL, BA, &r.scale(-dt));

        let fp = f.try_mul(&self.cov).expect("15x15");
        self.cov = fp.try_mul(&f.transpose()).expect("15x15");
        let c = &self.config;
        for i in 0..3 {
            self.cov
                .add_at(THETA + i, THETA + i, (c.gyro_noise * c.gyro_noise) * dt);
            self.cov
                .add_at(VEL + i, VEL + i, (c.accel_noise * c.accel_noise) * dt);
            self.cov
                .add_at(BG + i, BG + i, (c.gyro_bias_walk * c.gyro_bias_walk) * dt);
            self.cov
                .add_at(BA + i, BA + i, (c.accel_bias_walk * c.accel_bias_walk) * dt);
        }
        // 2 × (15³) products + additions.
        self.ops += 2 * 15 * 15 * 15 + 15 * 15;
    }

    /// One visual observation: `id` with normalized coordinates `uv`.
    /// Unknown landmarks are initialized from `depth_hint` (and not used
    /// for an update); known ones produce an EKF update.
    pub fn visual_update(&mut self, id: u64, uv: [f64; 2], depth_hint: Option<f64>) {
        let Some(&p_w) = self.map.get(&id) else {
            if let Some(depth) = depth_hint {
                let bearing = Vec3::new(uv[0], uv[1], 1.0);
                let p_cam = bearing * depth;
                self.map.insert(id, self.state.pose.transform(&p_cam));
                self.ops += 30;
            }
            return;
        };

        // Predicted measurement.
        let p_c = self.state.pose.inverse_transform(&p_w);
        if p_c.z() <= 0.1 {
            return;
        }
        let inv_z = 1.0 / p_c.z();
        let predicted = [p_c.x() * inv_z, p_c.y() * inv_z];
        let innovation = [uv[0] - predicted[0], uv[1] - predicted[1]];

        // Measurement Jacobian H (2×15): only attitude and position blocks.
        let j_proj = [
            [inv_z, 0.0, -p_c.x() * inv_z * inv_z],
            [0.0, inv_z, -p_c.y() * inv_z * inv_z],
        ];
        let d_theta = p_c.skew(); // ∂p_c/∂δθ (right perturbation)
        let d_p = self.state.pose.rot.to_mat().transpose().scale(-1.0); // ∂p_c/∂δp
        let mut h = DMat::zeros(2, STATE_DIM);
        #[allow(clippy::needless_range_loop)] // parallel-indexed 2x3x3 contraction
        for row in 0..2 {
            for col in 0..3 {
                let mut acc_t = 0.0;
                let mut acc_p = 0.0;
                for k in 0..3 {
                    acc_t += j_proj[row][k] * d_theta.get(k, col);
                    acc_p += j_proj[row][k] * d_p.get(k, col);
                }
                h.set(row, THETA + col, acc_t);
                h.set(row, TRANS + col, acc_p);
            }
        }

        // Innovation covariance S = H·P·Hᵀ + R (2×2), gate, gain, update.
        let ph_t = self.cov.try_mul(&h.transpose()).expect("15x2");
        let mut s_mat = h.try_mul(&ph_t).expect("2x2");
        let r_meas = self.config.visual_noise * self.config.visual_noise;
        s_mat.add_at(0, 0, r_meas);
        s_mat.add_at(1, 1, r_meas);

        let det = s_mat.get(0, 0) * s_mat.get(1, 1) - s_mat.get(0, 1) * s_mat.get(1, 0);
        if det <= 0.0 {
            return;
        }
        let s_inv = DMat::from_rows(&[
            &[s_mat.get(1, 1) / det, -s_mat.get(0, 1) / det],
            &[-s_mat.get(1, 0) / det, s_mat.get(0, 0) / det],
        ]);

        // χ² gate.
        let iv = DVec::from(vec![innovation[0], innovation[1]]);
        let mahal = iv.dot(&s_inv.mat_vec(&iv));
        let gate = self.config.gate_sigma * self.config.gate_sigma;
        if mahal > gate * 2.0 {
            self.updates_gated += 1;
            return;
        }

        let k_gain = ph_t.try_mul(&s_inv).expect("15x2");
        let delta = k_gain.mat_vec(&iv);

        // Inject and reset.
        let mut tangent = [0.0; STATE_DIM];
        for (i, t) in tangent.iter_mut().enumerate() {
            *t = delta[i];
        }
        self.state = self.state.boxplus(&tangent);

        // P ← (I − K·H)·P.
        let kh = k_gain.try_mul(&h).expect("15x15");
        let ikh = &DMat::identity(STATE_DIM) - &kh;
        self.cov = ikh.try_mul(&self.cov).expect("15x15");
        // Symmetrize against round-off.
        self.cov = (&self.cov + &self.cov.transpose()).scale(0.5);

        self.updates_applied += 1;
        // H·P·Hᵀ (2·15²·2) + K (15·2·2) + K·H·P (15²·2 + 15³)…
        self.ops += (2 * 15 * 15 * 2 + 15 * 2 * 2 + 15 * 15 * 2 + 15 * 15 * 15 + 60) as u64;
    }

    /// Position 1σ bound from the covariance trace (diagnostic).
    pub fn position_sigma(&self) -> f64 {
        ((self.cov.get(TRANS, TRANS)
            + self.cov.get(TRANS + 1, TRANS + 1)
            + self.cov.get(TRANS + 2, TRANS + 2))
            / 3.0)
            .max(0.0)
            .sqrt()
    }
}

fn add_block(m: &mut DMat, row: usize, col: usize, b: &Mat3) {
    for i in 0..3 {
        for j in 0..3 {
            m.add_at(row + i, col + j, b.get(i, j));
        }
    }
}

fn add_identity_block(m: &mut DMat, row: usize, col: usize, v: f64) {
    for i in 0..3 {
        m.add_at(row + i, col + i, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stationary_samples(n: usize) -> Vec<ImuSample> {
        (0..n)
            .map(|_| ImuSample {
                gyro: Vec3::ZERO,
                accel: -GRAVITY,
                dt: 0.005,
            })
            .collect()
    }

    #[test]
    fn stationary_propagation_stays_put() {
        let mut ekf = EkfVio::new(
            KeyframeState::at_pose(Pose::IDENTITY, 0.0),
            EkfConfig::default(),
        );
        ekf.propagate(&stationary_samples(200));
        assert!(ekf.pose().trans.norm() < 1e-9);
        assert!(ekf.pose().rot.angle_to(&Quat::IDENTITY) < 1e-12);
        // Uncertainty grows without updates.
        assert!(ekf.position_sigma() > 1e-4);
    }

    #[test]
    fn covariance_grows_during_dead_reckoning() {
        let mut ekf = EkfVio::new(
            KeyframeState::at_pose(Pose::IDENTITY, 0.0),
            EkfConfig::default(),
        );
        let s0 = ekf.position_sigma();
        ekf.propagate(&stationary_samples(100));
        let s1 = ekf.position_sigma();
        ekf.propagate(&stationary_samples(100));
        let s2 = ekf.position_sigma();
        assert!(s1 > s0 && s2 > s1);
    }

    #[test]
    fn visual_updates_shrink_uncertainty() {
        let mut ekf = EkfVio::new(
            KeyframeState::at_pose(Pose::IDENTITY, 0.0),
            EkfConfig::default(),
        );
        // Initialize a grid of landmarks straight ahead.
        for (i, (x, y)) in [(0.2, 0.1), (-0.3, 0.05), (0.0, -0.2), (0.4, 0.3)]
            .iter()
            .enumerate()
        {
            ekf.visual_update(i as u64, [*x, *y], Some(5.0));
        }
        assert_eq!(ekf.map_len(), 4);
        ekf.propagate(&stationary_samples(200));
        let before = ekf.position_sigma();
        // Re-observe the same landmarks from the same (true) pose.
        for (i, (x, y)) in [(0.2, 0.1), (-0.3, 0.05), (0.0, -0.2), (0.4, 0.3)]
            .iter()
            .enumerate()
        {
            ekf.visual_update(i as u64, [*x, *y], None);
        }
        let after = ekf.position_sigma();
        assert!(after < before, "sigma {before} -> {after}");
        assert_eq!(ekf.update_stats().0, 4);
    }

    #[test]
    fn updates_correct_a_perturbed_state() {
        let truth = KeyframeState::at_pose(Pose::IDENTITY, 0.0);
        let mut ekf = EkfVio::new(truth, EkfConfig::default());
        // Map ten landmarks from the truth pose.
        let landmarks: Vec<(u64, [f64; 2], f64)> = (0..10)
            .map(|i| {
                let uv = [
                    (i as f64 / 10.0 - 0.5) * 0.6,
                    ((i * 3 % 10) as f64 / 10.0 - 0.5) * 0.4,
                ];
                (i as u64, uv, 4.0 + (i % 4) as f64)
            })
            .collect();
        for (id, uv, d) in &landmarks {
            ekf.visual_update(*id, *uv, Some(*d));
        }
        // Perturb the filter state and inflate covariance accordingly.
        let mut delta = [0.0; STATE_DIM];
        delta[3] = 0.2;
        delta[4] = -0.15;
        ekf.state = ekf.state.boxplus(&delta);
        for i in 3..6 {
            ekf.cov.set(i, i, 0.1);
        }
        let before = ekf.pose().translation_distance(&truth.pose);
        // Re-observe the landmarks at their true bearings (a few passes).
        for _ in 0..3 {
            for (id, uv, _) in &landmarks {
                ekf.visual_update(*id, *uv, None);
            }
        }
        let after = ekf.pose().translation_distance(&truth.pose);
        assert!(after < before * 0.2, "error {before} -> {after}");
    }

    #[test]
    fn gating_rejects_outliers() {
        let mut ekf = EkfVio::new(
            KeyframeState::at_pose(Pose::IDENTITY, 0.0),
            EkfConfig::default(),
        );
        ekf.visual_update(7, [0.1, 0.1], Some(5.0));
        let pose_before = ekf.pose();
        // A wildly inconsistent re-observation must be gated out.
        ekf.visual_update(7, [5.0, -5.0], None);
        assert_eq!(ekf.update_stats(), (0, 1));
        assert!(ekf.pose().translation_distance(&pose_before) < 1e-12);
    }

    #[test]
    fn ops_counter_accumulates() {
        let mut ekf = EkfVio::new(
            KeyframeState::at_pose(Pose::IDENTITY, 0.0),
            EkfConfig::default(),
        );
        let o0 = ekf.ops();
        ekf.propagate(&stationary_samples(10));
        let o1 = ekf.ops();
        assert!(o1 > o0);
        ekf.visual_update(1, [0.0, 0.0], Some(3.0));
        ekf.visual_update(1, [0.0, 0.0], None);
        assert!(ekf.ops() > o1);
    }
}
