//! Assembly of the normal equations `A·δp = b` for one sliding window.
//!
//! The global error-state ordering puts all inverse depths first, then the
//! 15-dim keyframe states. Because every visual factor touches exactly one
//! inverse depth, the leading `a × a` block of `A` is *diagonal*; this is the
//! structure that makes the paper's D-type Schur elimination optimal
//! (Sec. 3.2.2) and that the hardware template is organized around.
//!
//! `A` is assembled directly from per-factor blocks (as production BA solvers
//! do) rather than materializing the global Jacobian; the per-factor flop
//! counts still match the M-DFG cost model in `archytas-mdfg`.

use crate::factors::{evaluate_imu, evaluate_visual, FactorWeights};
use crate::prior::Prior;
use crate::window::{SlidingWindow, STATE_DIM};
use archytas_math::{DMat, DVec};

/// Assembled normal equations plus bookkeeping for one linearization.
#[derive(Debug, Clone)]
pub struct NormalEquations {
    /// Gauss–Newton matrix `A = JᵀWJ` (+ prior information).
    pub a: DMat,
    /// Right-hand side `b = −JᵀWe` (+ prior contribution).
    pub b: DVec,
    /// One-half squared weighted residual norm (the MAP cost, Eq. 2).
    pub cost: f64,
    /// Number of landmark (diagonal-block) parameters.
    pub num_landmarks: usize,
    /// Visual observations actually used (in front of both cameras).
    pub used_observations: usize,
}

/// Builds the normal equations of a window at its current estimate.
///
/// `prior` carries the marginalization product from the previous window
/// (`Hp`, `rp` of Eq. 2); `gauge` adds a strong pose prior on keyframe 0 when
/// no marginalization prior exists, fixing the global gauge freedom.
pub fn build_normal_equations(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
) -> NormalEquations {
    let a_dim = window.state_dim();
    let num_l = window.num_landmarks();
    let mut a = DMat::zeros(a_dim, a_dim);
    let mut b = DVec::zeros(a_dim);
    let mut cost = 0.0;
    let mut used = 0;

    // --- visual factors ---
    let wv = weights.visual;
    let wv2 = wv * wv;
    for obs in &window.observations {
        let lm = &window.landmarks[obs.landmark];
        if lm.anchor == obs.keyframe {
            continue; // the anchor observation defines the bearing exactly
        }
        let anchor_kf = &window.keyframes[lm.anchor];
        let obs_kf = &window.keyframes[obs.keyframe];
        let Some(ev) = evaluate_visual(
            &anchor_kf.pose,
            &obs_kf.pose,
            &lm.bearing,
            lm.inv_depth,
            obs.uv,
        ) else {
            continue;
        };
        used += 1;

        let col_rho = obs.landmark;
        let col_anchor = window.kf_offset(lm.anchor);
        let col_obs = window.kf_offset(obs.keyframe);

        for r in 0..2 {
            let e = ev.residual[r];
            cost += 0.5 * wv2 * e * e;
            // Gather the sparse row: 1 rho column + two 6-dim pose blocks.
            // (Pose tangent occupies the first 6 slots of the 15-dim state.)
            let mut cols = [0usize; 13];
            let mut vals = [0f64; 13];
            cols[0] = col_rho;
            vals[0] = ev.j_rho[r];
            for c in 0..6 {
                cols[1 + c] = col_anchor + c;
                vals[1 + c] = ev.j_anchor[r][c];
                cols[7 + c] = col_obs + c;
                vals[7 + c] = ev.j_obs[r][c];
            }
            // Guard against the anchor and observer being the same state
            // (excluded above, but keep the invariant explicit).
            debug_assert_ne!(col_anchor, col_obs);
            scatter_row(&mut a, &mut b, &cols, &vals, e, wv2);
        }
    }

    // --- IMU factors ---
    for cons in &window.imu {
        let si = &window.keyframes[cons.first];
        let sj = &window.keyframes[cons.first + 1];
        let ev = evaluate_imu(si, sj, &cons.preintegration);
        let off_i = window.kf_offset(cons.first);
        let off_j = window.kf_offset(cons.first + 1);
        for r in 0..15 {
            let w = weights.imu_row(r);
            let w2 = w * w;
            let e = ev.residual[r];
            cost += 0.5 * w2 * e * e;
            let mut cols = [0usize; 30];
            let mut vals = [0f64; 30];
            for c in 0..15 {
                cols[c] = off_i + c;
                vals[c] = ev.j_i[r][c];
                cols[15 + c] = off_j + c;
                vals[15 + c] = ev.j_j[r][c];
            }
            scatter_row(&mut a, &mut b, &cols, &vals, e, w2);
        }
    }

    // --- marginalization prior ---
    if let Some(p) = prior {
        cost += p.add_to_normal_equations(window, &mut a, &mut b);
    } else {
        // Gauge fixation: strongly pin keyframe 0's pose (and weakly its
        // velocity/biases so the very first window is well-conditioned).
        let off = window.kf_offset(0);
        for c in 0..STATE_DIM {
            let w2 = if c < 6 { 1e8 } else { 1e2 };
            a.add_at(off + c, off + c, w2);
        }
    }

    NormalEquations {
        a,
        b,
        cost,
        num_landmarks: num_l,
        used_observations: used,
    }
}

/// Rank-1 update of `A` and `b` from one sparse residual row.
///
/// `cols`/`vals` describe the nonzero Jacobian entries of the row, `e` its
/// residual and `w2` its squared weight.
fn scatter_row(a: &mut DMat, b: &mut DVec, cols: &[usize], vals: &[f64], e: f64, w2: f64) {
    for (idx_i, (&ci, &vi)) in cols.iter().zip(vals).enumerate() {
        if vi == 0.0 {
            continue;
        }
        b[ci] -= w2 * vi * e;
        for (&cj, &vj) in cols[idx_i..].iter().zip(&vals[idx_i..]) {
            if vj == 0.0 {
                continue;
            }
            let contrib = w2 * vi * vj;
            a.add_at(ci, cj, contrib);
            if ci != cj {
                a.add_at(cj, ci, contrib);
            }
        }
    }
}

/// Evaluates only the cost of the window at its current estimate (used for
/// LM step acceptance without paying for a full re-linearization).
pub fn evaluate_cost(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
) -> f64 {
    let mut cost = 0.0;
    let wv2 = weights.visual * weights.visual;
    for obs in &window.observations {
        let lm = &window.landmarks[obs.landmark];
        if lm.anchor == obs.keyframe {
            continue;
        }
        if let Some(ev) = evaluate_visual(
            &window.keyframes[lm.anchor].pose,
            &window.keyframes[obs.keyframe].pose,
            &lm.bearing,
            lm.inv_depth,
            obs.uv,
        ) {
            cost += 0.5 * wv2 * (ev.residual[0].powi(2) + ev.residual[1].powi(2));
        }
    }
    for cons in &window.imu {
        let ev = evaluate_imu(
            &window.keyframes[cons.first],
            &window.keyframes[cons.first + 1],
            &cons.preintegration,
        );
        for (r, e) in ev.residual.iter().enumerate() {
            let w = weights.imu_row(r);
            cost += 0.5 * w * w * e * e;
        }
    }
    if let Some(p) = prior {
        cost += p.cost(window);
    }
    cost
}

/// Applies the solved increment `delta` to every landmark and keyframe.
pub fn apply_increment(window: &mut SlidingWindow, delta: &DVec) {
    let num_l = window.num_landmarks();
    for (i, lm) in window.landmarks.iter_mut().enumerate() {
        lm.inv_depth = (lm.inv_depth + delta[i]).max(1e-6);
    }
    for i in 0..window.num_keyframes() {
        let off = num_l + i * STATE_DIM;
        let slice: Vec<f64> = (0..STATE_DIM).map(|c| delta[off + c]).collect();
        window.keyframes[i] = window.keyframes[i].boxplus(&slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Pose, Quat, Vec3};
    use crate::window::{KeyframeState, Landmark, Observation};

    /// Two keyframes observing a handful of landmarks, no IMU.
    fn toy_window(perturb: bool) -> SlidingWindow {
        let mut w = SlidingWindow::new();
        let kf0 = KeyframeState::at_pose(Pose::IDENTITY, 0.0);
        let kf1 = KeyframeState::at_pose(
            Pose::new(Quat::exp(&Vec3::new(0.0, 0.02, 0.0)), Vec3::new(0.5, 0.0, 0.0)),
            0.1,
        );
        w.keyframes = vec![kf0, kf1];
        for (i, (x, y, depth)) in [
            (0.1, 0.05, 4.0),
            (-0.2, 0.1, 6.0),
            (0.3, -0.15, 5.0),
            (0.0, 0.2, 8.0),
        ]
        .iter()
        .enumerate()
        {
            let bearing = Vec3::new(*x, *y, 1.0);
            let truth_inv = 1.0 / depth;
            let p_w = kf0.pose.transform(&(bearing * *depth));
            let p_c1 = kf1.pose.inverse_transform(&p_w);
            let uv1 = [p_c1.x() / p_c1.z(), p_c1.y() / p_c1.z()];
            let inv_depth = if perturb { truth_inv * 1.2 } else { truth_inv };
            w.landmarks.push(Landmark {
                id: i as u64,
                anchor: 0,
                bearing,
                inv_depth,
            });
            w.observations.push(Observation {
                landmark: i,
                keyframe: 1,
                uv: uv1,
            });
        }
        w
    }

    #[test]
    fn cost_zero_at_ground_truth() {
        let w = toy_window(false);
        let ne = build_normal_equations(&w, &FactorWeights::default(), None);
        assert!(ne.cost < 1e-15, "cost {}", ne.cost);
        assert_eq!(ne.used_observations, 4);
        assert!(ne.b.norm() < 1e-9);
    }

    #[test]
    fn leading_block_is_diagonal() {
        let w = toy_window(true);
        let ne = build_normal_equations(&w, &FactorWeights::default(), None);
        let a = ne.num_landmarks;
        for i in 0..a {
            for j in 0..a {
                if i != j {
                    assert_eq!(ne.a.get(i, j), 0.0, "off-diagonal ({i},{j}) nonzero");
                }
            }
        }
        // The diagonal itself must be populated (each landmark is observed).
        for i in 0..a {
            assert!(ne.a.get(i, i) > 0.0);
        }
    }

    #[test]
    fn a_is_symmetric() {
        let w = toy_window(true);
        let ne = build_normal_equations(&w, &FactorWeights::default(), None);
        assert!(ne.a.is_symmetric(1e-9));
    }

    #[test]
    fn gradient_points_downhill() {
        let mut w = toy_window(true);
        let weights = FactorWeights::default();
        let ne = build_normal_equations(&w, &weights, None);
        assert!(ne.cost > 0.0);
        // Step a small distance along b (the negative gradient).
        let step = ne.b.scale(1e-12);
        apply_increment(&mut w, &step);
        let after = evaluate_cost(&w, &weights, None);
        assert!(after < ne.cost, "cost {} -> {}", ne.cost, after);
    }

    #[test]
    fn evaluate_cost_matches_build() {
        let w = toy_window(true);
        let weights = FactorWeights::default();
        let ne = build_normal_equations(&w, &weights, None);
        let c = evaluate_cost(&w, &weights, None);
        assert!((ne.cost - c).abs() < 1e-12);
    }

    #[test]
    fn apply_increment_clamps_inverse_depth() {
        let mut w = toy_window(false);
        let dim = w.state_dim();
        let mut delta = DVec::zeros(dim);
        delta[0] = -10.0; // would drive inv_depth negative
        apply_increment(&mut w, &delta);
        assert!(w.landmarks[0].inv_depth > 0.0);
    }
}
