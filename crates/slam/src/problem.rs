//! Assembly of the normal equations `A·δp = b` for one sliding window.
//!
//! The global error-state ordering puts all inverse depths first, then the
//! 15-dim keyframe states. Because every visual factor touches exactly one
//! inverse depth, the leading `a × a` block of `A` is *diagonal*; this is the
//! structure that makes the paper's D-type Schur elimination optimal
//! (Sec. 3.2.2) and that the hardware template is organized around.
//!
//! `A` is assembled directly from per-factor blocks (as production BA solvers
//! do) rather than materializing the global Jacobian; the per-factor flop
//! counts still match the M-DFG cost model in `archytas-mdfg`.

use crate::factors::{evaluate_imu, evaluate_visual, evaluate_visual_residual, FactorWeights};
use crate::prior::Prior;
use crate::window::{SlidingWindow, STATE_DIM};
use archytas_math::{kernels, BlockSparseSystem, DMat, DVec};

/// Height of the `W` blocks a visual factor writes: the pose-tangent slots of
/// a keyframe state (rotation + translation, the first 6 of the 15).
pub const POSE_TANGENT_DIM: usize = 6;

/// Destination of normal-equation scatter writes.
///
/// The assembly loop is generic over this sink so the dense matrix and the
/// block-sparse system are filled by the *same* factor iteration: every
/// logical entry receives the same contributions in the same order, which is
/// what makes the two solve paths bit-identical.
pub(crate) trait NormalEqSink {
    /// Adds `v` at `(i, j)` of `A` in the global state ordering. Raw — no
    /// implicit mirroring; callers write both triangles explicitly.
    fn add_a(&mut self, i: usize, j: usize, v: f64);
    /// Subtracts `v` from `b[i]` (the `b -= Jᵀ·W·e` scatter convention).
    fn sub_b(&mut self, i: usize, v: f64);
    /// Adds `scale·vals[t]` at `(i, j0 + t)` for each nonzero `vals[t]` — the
    /// contiguous-run form of [`NormalEqSink::add_a`] that lets sinks use
    /// slice writes on matrix rows.
    ///
    /// Skipping the zero entries mirrors the per-pair scatter's zero guard
    /// and is bit-safe even where the per-element path did not skip:
    /// accumulated entries are sums of nonzero terms, hence never `-0.0`,
    /// and adding `±0.0` to anything that is not `-0.0` leaves its bit
    /// pattern alone.
    fn add_a_row(&mut self, i: usize, j0: usize, vals: &[f64], scale: f64) {
        for (t, &v) in vals.iter().enumerate() {
            if v != 0.0 {
                self.add_a(i, j0 + t, scale * v);
            }
        }
    }
    /// Mirror of an [`NormalEqSink::add_a_row`]: the symmetric counterpart
    /// writes `scale·vals[t]` at `(i0 + t, j)`, below the diagonal (the
    /// assembler emits runs in ascending column order, so row writes land in
    /// the upper triangle and mirrors in the lower).
    ///
    /// Because the mirror of every contribution carries the exact same value
    /// as its primary, the accumulated lower triangle is bitwise equal to
    /// the transposed upper one. Sinks may therefore ignore these calls and
    /// instead copy the lower triangle from the upper in
    /// [`NormalEqSink::reflect_upper`] — *except* where the mirrored region
    /// is their only storage for a block (the block-sparse `W`).
    fn mirror_a_col(&mut self, i0: usize, j: usize, vals: &[f64], scale: f64) {
        for (t, &v) in vals.iter().enumerate() {
            if v != 0.0 {
                self.add_a(i0 + t, j, scale * v);
            }
        }
    }
    /// Called once after the factor loop (before the prior, whose `Hp` may
    /// be asymmetric in the last bits and is therefore written raw to both
    /// triangles). Sinks that ignored [`NormalEqSink::mirror_a_col`] writes
    /// reconstruct the lower triangle here by copying the upper.
    fn reflect_upper(&mut self) {}

    /// Fused pair form of [`NormalEqSink::add_a_row`]: row 0's contribution
    /// then row 1's at the same `(i, j0)` run. The default is the two
    /// sequential calls; sinks override it with a single-traversal kernel
    /// that applies both guarded multiply-adds per cell in the same order —
    /// bit-identical by construction, half the row walks.
    fn add_a_row2(&mut self, i: usize, j0: usize, vals0: &[f64], s0: f64, vals1: &[f64], s1: f64) {
        self.add_a_row(i, j0, vals0, s0);
        self.add_a_row(i, j0, vals1, s1);
    }

    /// Fused pair form of [`NormalEqSink::mirror_a_col`], with the same
    /// contract as [`NormalEqSink::add_a_row2`].
    fn mirror_a_col2(
        &mut self,
        i0: usize,
        j: usize,
        vals0: &[f64],
        s0: f64,
        vals1: &[f64],
        s1: f64,
    ) {
        self.mirror_a_col(i0, j, vals0, s0);
        self.mirror_a_col(i0, j, vals1, s1);
    }

    /// Fused many-row form of [`NormalEqSink::add_a_row`]: every `(vals,
    /// scale)` source row — `len` leading entries of each — applied at the
    /// same `(i, j0)` run, in slice order. Default is the sequential calls;
    /// overrides keep the per-cell contribution order and bits.
    fn add_a_row_fused(&mut self, i: usize, j0: usize, len: usize, rows: &[(&[f64], f64)]) {
        for &(vals, s) in rows {
            self.add_a_row(i, j0, &vals[..len], s);
        }
    }

    /// Fused many-row form of [`NormalEqSink::mirror_a_col`], with the same
    /// contract as [`NormalEqSink::add_a_row_fused`].
    fn mirror_a_col_fused(&mut self, i0: usize, j: usize, len: usize, rows: &[(&[f64], f64)]) {
        for &(vals, s) in rows {
            self.mirror_a_col(i0, j, &vals[..len], s);
        }
    }

    /// Whole-observation scatter of one visual factor: a 1-wide inverse-depth
    /// run plus two pose-tangent runs (`first.0 < second.0`), shared by both
    /// residual rows. The default is exactly the generic per-source-column
    /// scatter ([`scatter_runs2`]); sinks that store the factor's destination
    /// regions directly override it with a fused routine that replays the
    /// same per-cell guarded multiply-add sequence — bit-identical by
    /// construction — without the per-column sink-call plumbing.
    fn scatter_visual(
        &mut self,
        rho: (usize, &[f64], &[f64]),
        first: (usize, &[f64], &[f64]),
        second: (usize, &[f64], &[f64]),
        e: [f64; 2],
        w2: f64,
    ) where
        Self: Sized,
    {
        scatter_runs2(self, &[rho, first, second], e, w2);
    }
}

pub(crate) struct DenseSink<'a> {
    pub a: &'a mut DMat,
    pub b: &'a mut DVec,
}

impl NormalEqSink for DenseSink<'_> {
    fn add_a(&mut self, i: usize, j: usize, v: f64) {
        self.a.add_at(i, j, v);
    }
    fn sub_b(&mut self, i: usize, v: f64) {
        self.b[i] -= v;
    }
    fn add_a_row(&mut self, i: usize, j0: usize, vals: &[f64], scale: f64) {
        kernels::add_scaled_skip(&mut self.a.row_mut(i)[j0..j0 + vals.len()], vals, scale);
    }
    fn mirror_a_col(&mut self, _i0: usize, _j: usize, _vals: &[f64], _scale: f64) {
        // Deferred: the whole lower triangle is copied in `reflect_upper`.
    }
    fn add_a_row2(&mut self, i: usize, j0: usize, vals0: &[f64], s0: f64, vals1: &[f64], s1: f64) {
        kernels::add_scaled_skip2(
            &mut self.a.row_mut(i)[j0..j0 + vals0.len()],
            vals0,
            s0,
            vals1,
            s1,
        );
    }
    fn mirror_a_col2(
        &mut self,
        _i0: usize,
        _j: usize,
        _vals0: &[f64],
        _s0: f64,
        _vals1: &[f64],
        _s1: f64,
    ) {
        // Deferred, like the single-row mirror.
    }
    fn add_a_row_fused(&mut self, i: usize, j0: usize, len: usize, rows: &[(&[f64], f64)]) {
        kernels::add_scaled_skip_rows(&mut self.a.row_mut(i)[j0..j0 + len], rows);
    }
    fn mirror_a_col_fused(&mut self, _i0: usize, _j: usize, _len: usize, _rows: &[(&[f64], f64)]) {
        // Deferred, like the single-row mirror.
    }
    fn reflect_upper(&mut self) {
        let n = self.a.rows();
        for r in 0..n {
            for c in (r + 1)..n {
                let v = self.a.get(r, c);
                self.a.set(c, r, v);
            }
        }
    }
}

/// Routes global-ordering writes into a [`BlockSparseSystem`]: the leading
/// `p` indices are landmarks, the rest the pose region. Upper-right (`X`)
/// writes are dropped — that block is implied by symmetry and never stored —
/// so the `W` entries receive exactly the mirror-write sequence the dense
/// lower-left block gets.
struct BlockSink<'a> {
    sys: &'a mut BlockSparseSystem<f64>,
    p: usize,
}

impl NormalEqSink for BlockSink<'_> {
    fn add_a(&mut self, i: usize, j: usize, v: f64) {
        let p = self.p;
        match (i < p, j < p) {
            (true, true) => {
                debug_assert_eq!(i, j, "off-diagonal landmark–landmark entry");
                self.sys.add_u(i, v);
            }
            (false, false) => self.sys.add_v(i - p, j - p, v),
            (false, true) => self.sys.add_w(j, i - p, v),
            (true, false) => {}
        }
    }
    fn sub_b(&mut self, i: usize, v: f64) {
        if i < self.p {
            self.sys.sub_bx(i, v);
        } else {
            self.sys.sub_by(i - self.p, v);
        }
    }
    fn add_a_row(&mut self, i: usize, j0: usize, vals: &[f64], scale: f64) {
        let p = self.p;
        if i >= p && j0 >= p {
            self.sys.add_v_row(i - p, j0 - p, vals, scale);
        } else if i < p && j0 >= p {
            // X block: implied by symmetry, never stored.
        } else {
            for (t, &v) in vals.iter().enumerate() {
                if v != 0.0 {
                    self.add_a(i, j0 + t, scale * v);
                }
            }
        }
    }
    fn mirror_a_col(&mut self, i0: usize, j: usize, vals: &[f64], scale: f64) {
        let p = self.p;
        if i0 >= p && j < p {
            // The mirror writes *are* the `W` block's storage (the upper
            // `X` primaries are dropped), so they cannot be deferred.
            self.sys.add_w_run(j, i0 - p, vals, scale);
        } else if i0 >= p {
            // Pose–pose mirror: deferred, `reflect_upper` copies `V`'s
            // lower triangle from the upper.
        } else {
            for (t, &v) in vals.iter().enumerate() {
                if v != 0.0 {
                    self.add_a(i0 + t, j, scale * v);
                }
            }
        }
    }
    fn add_a_row2(&mut self, i: usize, j0: usize, vals0: &[f64], s0: f64, vals1: &[f64], s1: f64) {
        let p = self.p;
        if i >= p && j0 >= p {
            self.sys.add_v_row2(i - p, j0 - p, vals0, s0, vals1, s1);
        } else if i < p && j0 >= p {
            // X block: implied by symmetry, never stored.
        } else {
            // Landmark-region runs are single-entry; the sequential calls
            // keep the per-cell row-0-then-row-1 order.
            self.add_a_row(i, j0, vals0, s0);
            self.add_a_row(i, j0, vals1, s1);
        }
    }
    fn mirror_a_col2(
        &mut self,
        i0: usize,
        j: usize,
        vals0: &[f64],
        s0: f64,
        vals1: &[f64],
        s1: f64,
    ) {
        let p = self.p;
        if i0 >= p && j < p {
            // One block lookup for both rows of the W run.
            self.sys.add_w_run2(j, i0 - p, vals0, s0, vals1, s1);
        } else if i0 >= p {
            // Pose–pose mirror: deferred.
        } else {
            self.mirror_a_col(i0, j, vals0, s0);
            self.mirror_a_col(i0, j, vals1, s1);
        }
    }
    fn add_a_row_fused(&mut self, i: usize, j0: usize, len: usize, rows: &[(&[f64], f64)]) {
        let p = self.p;
        if i >= p && j0 >= p {
            self.sys.add_v_row_fused(i - p, j0 - p, len, rows);
        } else if i < p && j0 >= p {
            // X block: implied by symmetry, never stored.
        } else {
            for &(vals, s) in rows {
                self.add_a_row(i, j0, &vals[..len], s);
            }
        }
    }
    fn reflect_upper(&mut self) {
        self.sys.reflect_v_upper();
    }
    fn scatter_visual(
        &mut self,
        rho: (usize, &[f64], &[f64]),
        first: (usize, &[f64], &[f64]),
        second: (usize, &[f64], &[f64]),
        e: [f64; 2],
        w2: f64,
    ) {
        let p = self.p;
        // The SLAM layout: rho is a landmark column, both pose runs are
        // 6-wide (= the block-sparse `W` height) and inside the pose region.
        // Anything else falls back to the generic per-column scatter.
        if rho.0 < p && first.0 >= p && first.1.len() == POSE_TANGENT_DIM && rho.1.len() == 1 {
            let (f0, f1): (&[f64; 6], &[f64; 6]) =
                (first.1.try_into().unwrap(), first.2.try_into().unwrap());
            let (s0, s1): (&[f64; 6], &[f64; 6]) =
                (second.1.try_into().unwrap(), second.2.try_into().unwrap());
            self.sys.add_visual_obs6(
                rho.0,
                first.0 - p,
                second.0 - p,
                [rho.1[0], rho.2[0]],
                [f0, f1],
                [s0, s1],
                e,
                w2,
            );
        } else {
            scatter_runs2(self, &[rho, first, second], e, w2);
        }
    }
}

/// Assembled normal equations plus bookkeeping for one linearization.
#[derive(Debug, Clone)]
pub struct NormalEquations {
    /// Gauss–Newton matrix `A = JᵀWJ` (+ prior information).
    pub a: DMat,
    /// Right-hand side `b = −JᵀWe` (+ prior contribution).
    pub b: DVec,
    /// One-half squared weighted residual norm (the MAP cost, Eq. 2).
    pub cost: f64,
    /// Number of landmark (diagonal-block) parameters.
    pub num_landmarks: usize,
    /// Visual observations actually used (in front of both cameras).
    pub used_observations: usize,
}

/// Builds the normal equations of a window at its current estimate.
///
/// `prior` carries the marginalization product from the previous window
/// (`Hp`, `rp` of Eq. 2); `gauge` adds a strong pose prior on keyframe 0 when
/// no marginalization prior exists, fixing the global gauge freedom.
pub fn build_normal_equations(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
) -> NormalEquations {
    let a_dim = window.state_dim();
    let mut a = DMat::zeros(a_dim, a_dim);
    let mut b = DVec::zeros(a_dim);
    let (cost, used) = assemble(
        window,
        weights,
        prior,
        &mut DenseSink {
            a: &mut a,
            b: &mut b,
        },
    );
    NormalEquations {
        a,
        b,
        cost,
        num_landmarks: window.num_landmarks(),
        used_observations: used,
    }
}

/// Assembly metadata of one block-sparse linearization (the block analogue of
/// the bookkeeping fields of [`NormalEquations`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockNormalEqInfo {
    /// One-half squared weighted residual norm (the MAP cost, Eq. 2).
    pub cost: f64,
    /// Number of landmark (diagonal-block) parameters.
    pub num_landmarks: usize,
    /// Visual observations actually used (in front of both cameras).
    pub used_observations: usize,
}

/// Builds the normal equations of a window directly in block-sparse form,
/// skipping the dense `state_dim × state_dim` assembly entirely.
///
/// `sys` is reset to the window's shape (reusing its allocations) and filled
/// through the same factor loop as [`build_normal_equations`], so its dense
/// image is bit-identical to the matrix that function produces — and
/// [`BlockSparseSystem::solve_into`] on it is bit-identical to the dense
/// Schur path.
pub fn build_block_normal_equations(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
    sys: &mut BlockSparseSystem<f64>,
) -> BlockNormalEqInfo {
    let num_l = window.num_landmarks();
    sys.reset(
        num_l,
        STATE_DIM * window.num_keyframes(),
        POSE_TANGENT_DIM,
        STATE_DIM,
    );
    let (cost, used) = assemble(window, weights, prior, &mut BlockSink { sys, p: num_l });
    BlockNormalEqInfo {
        cost,
        num_landmarks: num_l,
        used_observations: used,
    }
}

/// The shared factor loop: linearizes every factor and scatters it into
/// `sink`. Returns `(cost, used_observations)`.
fn assemble<S: NormalEqSink>(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
    sink: &mut S,
) -> (f64, usize) {
    let mut cost = 0.0;
    let mut used = 0;

    // --- visual factors ---
    let wv = weights.visual;
    let wv2 = wv * wv;
    for obs in &window.observations {
        let lm = &window.landmarks[obs.landmark];
        if lm.anchor == obs.keyframe {
            continue; // the anchor observation defines the bearing exactly
        }
        let anchor_kf = &window.keyframes[lm.anchor];
        let obs_kf = &window.keyframes[obs.keyframe];
        let Some(ev) = evaluate_visual(
            &anchor_kf.pose,
            &obs_kf.pose,
            &lm.bearing,
            lm.inv_depth,
            obs.uv,
        ) else {
            continue;
        };
        used += 1;

        // Robust (Huber/IRLS) re-weighting of outlier observations. With
        // `huber_delta: None` the match arm reuses `wv2` itself, so the
        // nominal path is bit-identical to the pre-robust assembler.
        let w2 = match weights.huber_delta {
            None => wv2,
            Some(_) => wv2 * weights.visual_robust_scale(ev.residual[0], ev.residual[1]),
        };

        let col_rho = obs.landmark;
        let col_anchor = window.kf_offset(lm.anchor);
        let col_obs = window.kf_offset(obs.keyframe);

        for r in 0..2 {
            let e = ev.residual[r];
            cost += 0.5 * w2 * e * e;
        }
        // The sparse rows: 1 rho column + two 6-wide pose-tangent runs,
        // ordered by column (re-anchoring can place the anchor after the
        // observer). Pose tangent occupies the first 6 slots of the
        // 15-dim state. Guard against the anchor and observer being the
        // same state (excluded above, but keep the invariant explicit).
        // Both residual rows share the column structure, so they scatter
        // in one fused pass.
        debug_assert_ne!(col_anchor, col_obs);
        let j_rho0 = [ev.j_rho[0]];
        let j_rho1 = [ev.j_rho[1]];
        let anchor_run = (col_anchor, &ev.j_anchor[0][..], &ev.j_anchor[1][..]);
        let obs_run = (col_obs, &ev.j_obs[0][..], &ev.j_obs[1][..]);
        let (first, second) = if col_anchor < col_obs {
            (anchor_run, obs_run)
        } else {
            (obs_run, anchor_run)
        };
        sink.scatter_visual(
            (col_rho, &j_rho0[..], &j_rho1[..]),
            first,
            second,
            ev.residual,
            w2,
        );
    }

    // --- IMU factors ---
    for cons in &window.imu {
        let si = &window.keyframes[cons.first];
        let sj = &window.keyframes[cons.first + 1];
        let ev = evaluate_imu(si, sj, &cons.preintegration);
        let off_i = window.kf_offset(cons.first);
        let off_j = window.kf_offset(cons.first + 1);
        let mut w2s = [0.0; STATE_DIM];
        for (r, w2) in w2s.iter_mut().enumerate() {
            let w = weights.imu_row(r);
            *w2 = w * w;
            let e = ev.residual[r];
            cost += 0.5 * *w2 * e * e;
        }
        // All 15 residual rows share the two state-wide runs, so they
        // scatter in one fused pass over the destination rows.
        scatter_imu_runs(sink, off_i, off_j, &ev, &w2s);
    }

    // Factor scatter done: materialize the (bitwise-symmetric) lower
    // triangle before the raw prior/gauge writes land on both triangles.
    sink.reflect_upper();

    // --- marginalization prior ---
    if let Some(p) = prior {
        cost += p.add_to_sink(window, sink);
    } else {
        // Gauge fixation: strongly pin keyframe 0's pose (and weakly its
        // velocity/biases so the very first window is well-conditioned).
        let off = window.kf_offset(0);
        for c in 0..STATE_DIM {
            let w2 = if c < 6 { 1e8 } else { 1e2 };
            sink.add_a(off + c, off + c, w2);
        }
    }

    (cost, used)
}

/// Rank-2 update of `A` and `b` from the two residual rows of one visual
/// factor, which share the same sparse column structure.
///
/// `runs` lists `(first_column, row-0 values, row-1 values)` segments — they
/// must be disjoint and in ascending column order, so that `add_a_row*`
/// primaries land in the upper triangle and `mirror_a_col*` writes below the
/// diagonal. `e` holds the two residuals and `w2` the shared squared weight.
///
/// Equivalent to the historical per-row scatter (row 0's full rank-1 update,
/// then row 1's): each unordered column pair appears exactly once per row,
/// and the fused sink writes apply row 0's guarded multiply-add before
/// row 1's at every cell — the same per-destination operation sequence, so
/// the assembled bits are unchanged. The destination rows of `A` are walked
/// once instead of twice; sources where only one row is nonzero fall back to
/// that row's single-row writes, exactly the calls the per-row scatter would
/// have made.
fn scatter_runs2<S: NormalEqSink>(
    sink: &mut S,
    runs: &[(usize, &[f64], &[f64])],
    e: [f64; 2],
    w2: f64,
) {
    for (ri, &(c0i, v0s, v1s)) in runs.iter().enumerate() {
        for ti in 0..v0s.len() {
            let (v0, v1) = (v0s[ti], v1s[ti]);
            let (nz0, nz1) = (v0 != 0.0, v1 != 0.0);
            if !nz0 && !nz1 {
                continue;
            }
            let ci = c0i + ti;
            let wv0 = w2 * v0;
            let wv1 = w2 * v1;
            if nz0 {
                sink.sub_b(ci, wv0 * e[0]);
            }
            if nz1 {
                sink.sub_b(ci, wv1 * e[1]);
            }
            let t0 = &v0s[ti..];
            let t1 = &v1s[ti..];
            if nz0 && nz1 {
                // Diagonal plus the rest of this run, then the mirror of
                // the off-diagonal part, then the cross runs — all fused.
                sink.add_a_row2(ci, ci, t0, wv0, t1, wv1);
                if t0.len() > 1 {
                    sink.mirror_a_col2(ci + 1, ci, &t0[1..], wv0, &t1[1..], wv1);
                }
                for &(c0j, vj0, vj1) in &runs[ri + 1..] {
                    sink.add_a_row2(ci, c0j, vj0, wv0, vj1, wv1);
                    sink.mirror_a_col2(c0j, ci, vj0, wv0, vj1, wv1);
                }
            } else {
                // Only one residual row is nonzero at this source column:
                // replay exactly its single-row writes.
                let (tail, wv, pick0) = if nz0 {
                    (t0, wv0, true)
                } else {
                    (t1, wv1, false)
                };
                sink.add_a_row(ci, ci, tail, wv);
                if tail.len() > 1 {
                    sink.mirror_a_col(ci + 1, ci, &tail[1..], wv);
                }
                for &(c0j, vj0, vj1) in &runs[ri + 1..] {
                    let vj = if pick0 { vj0 } else { vj1 };
                    sink.add_a_row(ci, c0j, vj, wv);
                    sink.mirror_a_col(c0j, ci, vj, wv);
                }
            }
        }
    }
}

/// Rank-15 update of `A` and `b` from all residual rows of one IMU factor,
/// whose rows all share the same two state-wide runs `(off_i, off_j)`.
///
/// Equivalent to 15 sequential single-row scatters in ascending row order:
/// for every cell of `A` (and entry of `b`) the active rows' guarded
/// multiply-adds are applied in that same order by the fused sink writes, so
/// the assembled bits are unchanged, while each destination row of `A` is
/// walked once per source column instead of once per (source column,
/// residual row) pair. `w2s` holds the per-row squared weights; rows whose
/// Jacobian is zero at a source column contribute nothing there, exactly as
/// their single-row scatter would have skipped that source.
fn scatter_imu_runs<S: NormalEqSink>(
    sink: &mut S,
    off_i: usize,
    off_j: usize,
    ev: &crate::factors::ImuEval,
    w2s: &[f64; STATE_DIM],
) {
    const EMPTY: (&[f64], f64) = (&[], 0.0);
    // Sources in run i: diagonal tail within run i, its mirror, and the
    // cross block against the full run j.
    for ti in 0..STATE_DIM {
        let ci = off_i + ti;
        let mut tails = [EMPTY; STATE_DIM];
        let mut crosses = [EMPTY; STATE_DIM];
        let mut n = 0;
        #[allow(clippy::needless_range_loop)] // r indexes w2s, j_i, and residual
        for r in 0..STATE_DIM {
            let v = ev.j_i[r][ti];
            if v == 0.0 {
                continue;
            }
            let wv = w2s[r] * v;
            sink.sub_b(ci, wv * ev.residual[r]);
            tails[n] = (&ev.j_i[r][ti..], wv);
            crosses[n] = (&ev.j_j[r][..], wv);
            n += 1;
        }
        if n == 0 {
            continue;
        }
        let tail_len = STATE_DIM - ti;
        sink.add_a_row_fused(ci, ci, tail_len, &tails[..n]);
        if tail_len > 1 {
            let mut mirrors = [EMPTY; STATE_DIM];
            for (m, t) in mirrors.iter_mut().zip(&tails[..n]) {
                *m = (&t.0[1..], t.1);
            }
            sink.mirror_a_col_fused(ci + 1, ci, tail_len - 1, &mirrors[..n]);
        }
        sink.add_a_row_fused(ci, off_j, STATE_DIM, &crosses[..n]);
        sink.mirror_a_col_fused(off_j, ci, STATE_DIM, &crosses[..n]);
    }
    // Sources in run j: only the diagonal tail within run j remains.
    for tj in 0..STATE_DIM {
        let ci = off_j + tj;
        let mut tails = [EMPTY; STATE_DIM];
        let mut n = 0;
        #[allow(clippy::needless_range_loop)] // r indexes w2s, j_j, and residual
        for r in 0..STATE_DIM {
            let v = ev.j_j[r][tj];
            if v == 0.0 {
                continue;
            }
            let wv = w2s[r] * v;
            sink.sub_b(ci, wv * ev.residual[r]);
            tails[n] = (&ev.j_j[r][tj..], wv);
            n += 1;
        }
        if n == 0 {
            continue;
        }
        let tail_len = STATE_DIM - tj;
        sink.add_a_row_fused(ci, ci, tail_len, &tails[..n]);
        if tail_len > 1 {
            let mut mirrors = [EMPTY; STATE_DIM];
            for (m, t) in mirrors.iter_mut().zip(&tails[..n]) {
                *m = (&t.0[1..], t.1);
            }
            sink.mirror_a_col_fused(ci + 1, ci, tail_len - 1, &mirrors[..n]);
        }
    }
}

/// Evaluates only the cost of the window at its current estimate (used for
/// LM step acceptance without paying for a full re-linearization).
pub fn evaluate_cost(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
) -> f64 {
    let mut cost = 0.0;
    let wv2 = weights.visual * weights.visual;
    for obs in &window.observations {
        let lm = &window.landmarks[obs.landmark];
        if lm.anchor == obs.keyframe {
            continue;
        }
        if let Some(e) = evaluate_visual_residual(
            &window.keyframes[lm.anchor].pose,
            &window.keyframes[obs.keyframe].pose,
            &lm.bearing,
            lm.inv_depth,
            obs.uv,
        ) {
            // Same robust gate as `assemble` so LM step acceptance compares
            // like against like (and the `None` path keeps its exact bits).
            // The residual-only evaluator skips the Jacobian chain rule but
            // is bit-identical on the residual itself.
            let w2 = match weights.huber_delta {
                None => wv2,
                Some(_) => wv2 * weights.visual_robust_scale(e[0], e[1]),
            };
            cost += 0.5 * w2 * (e[0].powi(2) + e[1].powi(2));
        }
    }
    for cons in &window.imu {
        let ev = evaluate_imu(
            &window.keyframes[cons.first],
            &window.keyframes[cons.first + 1],
            &cons.preintegration,
        );
        for (r, e) in ev.residual.iter().enumerate() {
            let w = weights.imu_row(r);
            cost += 0.5 * w * w * e * e;
        }
    }
    if let Some(p) = prior {
        cost += p.cost(window);
    }
    cost
}

/// Applies the solved increment `delta` to every landmark and keyframe.
pub fn apply_increment(window: &mut SlidingWindow, delta: &DVec) {
    let num_l = window.num_landmarks();
    for (i, lm) in window.landmarks.iter_mut().enumerate() {
        lm.inv_depth = (lm.inv_depth + delta[i]).max(1e-6);
    }
    for i in 0..window.num_keyframes() {
        let off = num_l + i * STATE_DIM;
        let mut tangent = [0.0; STATE_DIM];
        for (c, t) in tangent.iter_mut().enumerate() {
            *t = delta[off + c];
        }
        window.keyframes[i] = window.keyframes[i].boxplus(&tangent);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Pose, Quat, Vec3};
    use crate::window::{KeyframeState, Landmark, Observation};

    /// Two keyframes observing a handful of landmarks, no IMU.
    fn toy_window(perturb: bool) -> SlidingWindow {
        let mut w = SlidingWindow::new();
        let kf0 = KeyframeState::at_pose(Pose::IDENTITY, 0.0);
        let kf1 = KeyframeState::at_pose(
            Pose::new(
                Quat::exp(&Vec3::new(0.0, 0.02, 0.0)),
                Vec3::new(0.5, 0.0, 0.0),
            ),
            0.1,
        );
        w.keyframes = vec![kf0, kf1];
        for (i, (x, y, depth)) in [
            (0.1, 0.05, 4.0),
            (-0.2, 0.1, 6.0),
            (0.3, -0.15, 5.0),
            (0.0, 0.2, 8.0),
        ]
        .iter()
        .enumerate()
        {
            let bearing = Vec3::new(*x, *y, 1.0);
            let truth_inv = 1.0 / depth;
            let p_w = kf0.pose.transform(&(bearing * *depth));
            let p_c1 = kf1.pose.inverse_transform(&p_w);
            let uv1 = [p_c1.x() / p_c1.z(), p_c1.y() / p_c1.z()];
            let inv_depth = if perturb { truth_inv * 1.2 } else { truth_inv };
            w.landmarks.push(Landmark {
                id: i as u64,
                anchor: 0,
                bearing,
                inv_depth,
            });
            w.observations.push(Observation {
                landmark: i,
                keyframe: 1,
                uv: uv1,
            });
        }
        w
    }

    #[test]
    fn cost_zero_at_ground_truth() {
        let w = toy_window(false);
        let ne = build_normal_equations(&w, &FactorWeights::default(), None);
        assert!(ne.cost < 1e-15, "cost {}", ne.cost);
        assert_eq!(ne.used_observations, 4);
        assert!(ne.b.norm() < 1e-9);
    }

    #[test]
    fn leading_block_is_diagonal() {
        let w = toy_window(true);
        let ne = build_normal_equations(&w, &FactorWeights::default(), None);
        let a = ne.num_landmarks;
        for i in 0..a {
            for j in 0..a {
                if i != j {
                    assert_eq!(ne.a.get(i, j), 0.0, "off-diagonal ({i},{j}) nonzero");
                }
            }
        }
        // The diagonal itself must be populated (each landmark is observed).
        for i in 0..a {
            assert!(ne.a.get(i, i) > 0.0);
        }
    }

    #[test]
    fn a_is_symmetric() {
        let w = toy_window(true);
        let ne = build_normal_equations(&w, &FactorWeights::default(), None);
        assert!(ne.a.is_symmetric(1e-9));
    }

    #[test]
    fn gradient_points_downhill() {
        let mut w = toy_window(true);
        let weights = FactorWeights::default();
        let ne = build_normal_equations(&w, &weights, None);
        assert!(ne.cost > 0.0);
        // Step a small distance along b (the negative gradient).
        let step = ne.b.scale(1e-12);
        apply_increment(&mut w, &step);
        let after = evaluate_cost(&w, &weights, None);
        assert!(after < ne.cost, "cost {} -> {}", ne.cost, after);
    }

    #[test]
    fn evaluate_cost_matches_build() {
        let w = toy_window(true);
        let weights = FactorWeights::default();
        let ne = build_normal_equations(&w, &weights, None);
        let c = evaluate_cost(&w, &weights, None);
        assert!((ne.cost - c).abs() < 1e-12);
    }

    #[test]
    fn huber_downweights_gross_outliers() {
        let mut w = toy_window(false);
        w.observations[0].uv[0] += 5.0; // gross outlier on one track
        let plain = FactorWeights::default();
        let robust = plain.with_huber(0.01);
        let ne_p = build_normal_equations(&w, &plain, None);
        let ne_r = build_normal_equations(&w, &robust, None);
        // The outlier dominates the quadratic cost; Huber bounds its pull.
        assert!(
            ne_r.cost < ne_p.cost * 0.01,
            "{} vs {}",
            ne_r.cost,
            ne_p.cost
        );
        assert!(ne_r.b.norm() < ne_p.b.norm());
        // Step-acceptance consistency: evaluate_cost applies the same
        // weighting as the assembler.
        assert!((evaluate_cost(&w, &robust, None) - ne_r.cost).abs() < 1e-9);
    }

    #[test]
    fn huber_inactive_below_threshold_is_bit_identical() {
        let w = toy_window(true); // inliers only
        let plain = FactorWeights::default();
        let robust = plain.with_huber(1e9); // threshold above every residual
        let ne_p = build_normal_equations(&w, &plain, None);
        let ne_r = build_normal_equations(&w, &robust, None);
        assert_eq!(ne_p.cost.to_bits(), ne_r.cost.to_bits());
        for i in 0..ne_p.b.len() {
            assert_eq!(ne_p.b[i].to_bits(), ne_r.b[i].to_bits(), "b[{i}]");
            for j in 0..ne_p.b.len() {
                assert_eq!(ne_p.a.get(i, j).to_bits(), ne_r.a.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn apply_increment_clamps_inverse_depth() {
        let mut w = toy_window(false);
        let dim = w.state_dim();
        let mut delta = DVec::zeros(dim);
        delta[0] = -10.0; // would drive inv_depth negative
        apply_increment(&mut w, &delta);
        assert!(w.landmarks[0].inv_depth > 0.0);
    }
}
