//! Sliding-window state: keyframes, inverse-depth landmarks, observations
//! and IMU constraints.
//!
//! Landmarks are parameterized by *inverse depth along the bearing of their
//! anchor keyframe*, the VINS-style choice that makes the landmark block of
//! the information matrix exactly diagonal — the structural property the
//! paper's D-type Schur complement relies on (Sec. 3.2.2: "the optimal
//! solution almost always blocks A in such a way that U is a diagonal
//! matrix").

use crate::geometry::{Pose, Vec3};
use crate::imu::Preintegration;

/// Error-state dimension of one keyframe: `[δθ, δp, δv, δbg, δba]`.
///
/// This is the paper's `k = 15` ("the number of states in one IMU
/// observation", Sec. 3.3).
pub const STATE_DIM: usize = 15;

/// Full state of one keyframe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KeyframeState {
    /// Body pose in the world frame (camera frame coincides with body).
    pub pose: Pose,
    /// World-frame velocity.
    pub velocity: Vec3,
    /// Gyroscope bias.
    pub bg: Vec3,
    /// Accelerometer bias.
    pub ba: Vec3,
    /// Capture timestamp (s).
    pub timestamp: f64,
}

impl KeyframeState {
    /// A keyframe at rest at the given pose.
    pub fn at_pose(pose: Pose, timestamp: f64) -> Self {
        Self {
            pose,
            velocity: Vec3::ZERO,
            bg: Vec3::ZERO,
            ba: Vec3::ZERO,
            timestamp,
        }
    }

    /// Retraction by a 15-dim tangent slice `[δθ, δp, δv, δbg, δba]`.
    ///
    /// # Panics
    ///
    /// Panics when `delta.len() < 15`.
    pub fn boxplus(&self, delta: &[f64]) -> Self {
        assert!(delta.len() >= STATE_DIM, "boxplus: tangent too short");
        let dtheta = Vec3::new(delta[0], delta[1], delta[2]);
        let dp = Vec3::new(delta[3], delta[4], delta[5]);
        let dv = Vec3::new(delta[6], delta[7], delta[8]);
        let dbg = Vec3::new(delta[9], delta[10], delta[11]);
        let dba = Vec3::new(delta[12], delta[13], delta[14]);
        Self {
            pose: self.pose.boxplus(&dtheta, &dp),
            velocity: self.velocity + dv,
            bg: self.bg + dbg,
            ba: self.ba + dba,
            timestamp: self.timestamp,
        }
    }

    /// Tangent `self ⊟ other`, the inverse of [`KeyframeState::boxplus`]
    /// (to first order).
    pub fn boxminus(&self, other: &Self) -> [f64; STATE_DIM] {
        let dtheta = other.pose.rot.inverse().mul(&self.pose.rot).log();
        let dp = self.pose.trans - other.pose.trans;
        let dv = self.velocity - other.velocity;
        let dbg = self.bg - other.bg;
        let dba = self.ba - other.ba;
        let mut out = [0.0; STATE_DIM];
        out[0..3].copy_from_slice(&dtheta.0);
        out[3..6].copy_from_slice(&dp.0);
        out[6..9].copy_from_slice(&dv.0);
        out[9..12].copy_from_slice(&dbg.0);
        out[12..15].copy_from_slice(&dba.0);
        out
    }
}

/// An inverse-depth landmark anchored at one keyframe of the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Landmark {
    /// Stable identifier across windows.
    pub id: u64,
    /// Index of the anchor keyframe within the window.
    pub anchor: usize,
    /// Bearing `[x, y, 1]` of the landmark in the anchor camera frame
    /// (normalized image coordinates of the anchor observation).
    pub bearing: Vec3,
    /// Inverse of the depth along `bearing`.
    pub inv_depth: f64,
}

impl Landmark {
    /// World-frame position implied by the current window estimate.
    ///
    /// # Panics
    ///
    /// Panics when the landmark's anchor index is out of range.
    pub fn world_position(&self, keyframes: &[KeyframeState]) -> Vec3 {
        let anchor = &keyframes[self.anchor];
        let p_cam = self.bearing * (1.0 / self.inv_depth);
        anchor.pose.transform(&p_cam)
    }
}

/// One visual observation: a landmark seen from a (non-anchor) keyframe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Index into the window's landmark list.
    pub landmark: usize,
    /// Index of the observing keyframe.
    pub keyframe: usize,
    /// Normalized image coordinates of the measurement.
    pub uv: [f64; 2],
}

/// An IMU constraint between keyframes `first` and `first + 1`.
#[derive(Debug, Clone)]
pub struct ImuConstraint {
    /// Index of the earlier keyframe.
    pub first: usize,
    /// Preintegrated motion between the two keyframes.
    pub preintegration: Preintegration,
}

/// Per-window workload statistics — the inputs of the hardware latency
/// model (paper Eq. 13–15) and of the run-time iteration policy (Sec. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowWorkload {
    /// Number of feature points in the window (`a`).
    pub features: usize,
    /// Total visual observations across the window.
    pub observations: usize,
    /// Number of keyframes (`b`).
    pub keyframes: usize,
    /// Features leaving the window at the next marginalization (`am`).
    pub marginalized_features: usize,
}

impl WindowWorkload {
    /// Average observations per feature (`No` in Eq. 6); 0 for an empty
    /// window.
    pub fn avg_observations_per_feature(&self) -> f64 {
        if self.features == 0 {
            0.0
        } else {
            self.observations as f64 / self.features as f64
        }
    }
}

/// The sliding window the MAP estimator optimizes over.
#[derive(Debug, Default)]
pub struct SlidingWindow {
    /// Keyframe states, oldest first.
    pub keyframes: Vec<KeyframeState>,
    /// Landmarks currently tracked in the window.
    pub landmarks: Vec<Landmark>,
    /// Visual observations (anchor observations are implicit in the bearing).
    pub observations: Vec<Observation>,
    /// IMU constraints between consecutive keyframes.
    pub imu: Vec<ImuConstraint>,
}

impl Clone for SlidingWindow {
    fn clone(&self) -> Self {
        Self {
            keyframes: self.keyframes.clone(),
            landmarks: self.landmarks.clone(),
            observations: self.observations.clone(),
            imu: self.imu.clone(),
        }
    }

    /// Copies `source` into `self`, reusing each field's allocation — the
    /// derived impl would reallocate every vector, which matters for the LM
    /// loop's candidate window (one clone per damping retry).
    fn clone_from(&mut self, source: &Self) {
        self.keyframes.clone_from(&source.keyframes);
        self.landmarks.clone_from(&source.landmarks);
        self.observations.clone_from(&source.observations);
        self.imu.clone_from(&source.imu);
    }
}

impl SlidingWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keyframes (`b` in the paper's notation).
    pub fn num_keyframes(&self) -> usize {
        self.keyframes.len()
    }

    /// Number of landmarks (`a`, the feature-point count).
    pub fn num_landmarks(&self) -> usize {
        self.landmarks.len()
    }

    /// Number of visual observations.
    pub fn num_observations(&self) -> usize {
        self.observations.len()
    }

    /// Average observations per feature (`No` in the paper's Eq. 6).
    pub fn avg_observations_per_feature(&self) -> f64 {
        if self.landmarks.is_empty() {
            0.0
        } else {
            self.observations.len() as f64 / self.landmarks.len() as f64
        }
    }

    /// Error-state dimension of the whole window: `a + 15·b` (landmarks
    /// first — the ordering that produces a diagonal leading block).
    pub fn state_dim(&self) -> usize {
        self.num_landmarks() + STATE_DIM * self.num_keyframes()
    }

    /// Column offset of keyframe `i`'s error state in the global ordering.
    pub fn kf_offset(&self, i: usize) -> usize {
        self.num_landmarks() + STATE_DIM * i
    }

    /// Snapshot of the quantities the hardware latency model consumes
    /// (paper Eq. 13–15): `a` features, `No` observations per feature, `b`
    /// keyframes and `am` features about to be marginalized.
    pub fn workload(&self, marginalized_features: usize) -> WindowWorkload {
        WindowWorkload {
            features: self.num_landmarks(),
            observations: self.num_observations(),
            keyframes: self.num_keyframes(),
            marginalized_features,
        }
    }

    /// Validates internal index consistency; useful before optimization.
    pub fn validate(&self) -> bool {
        let b = self.keyframes.len();
        let a = self.landmarks.len();
        self.landmarks
            .iter()
            .all(|l| l.anchor < b && l.inv_depth > 0.0)
            && self
                .observations
                .iter()
                .all(|o| o.landmark < a && o.keyframe < b)
            && self.imu.iter().all(|c| c.first + 1 < b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Quat;

    fn kf(x: f64) -> KeyframeState {
        KeyframeState::at_pose(Pose::new(Quat::IDENTITY, Vec3::new(x, 0.0, 0.0)), x)
    }

    #[test]
    fn boxplus_boxminus_roundtrip() {
        let a = kf(1.0);
        let delta = [
            0.01, -0.02, 0.03, 0.5, -0.5, 0.2, 0.1, 0.0, -0.1, 0.001, 0.002, -0.001, 0.01, -0.01,
            0.0,
        ];
        let b = a.boxplus(&delta);
        let back = b.boxminus(&a);
        for i in 0..STATE_DIM {
            assert!(
                (back[i] - delta[i]).abs() < 1e-9,
                "slot {i}: {} vs {}",
                back[i],
                delta[i]
            );
        }
    }

    #[test]
    fn landmark_world_position() {
        let keyframes = vec![kf(0.0)];
        let lm = Landmark {
            id: 1,
            anchor: 0,
            bearing: Vec3::new(0.5, 0.0, 1.0),
            inv_depth: 0.25, // depth 4 along bearing
        };
        let p = lm.world_position(&keyframes);
        assert!((p - Vec3::new(2.0, 0.0, 4.0)).norm() < 1e-12);
    }

    #[test]
    fn window_counts_and_offsets() {
        let mut w = SlidingWindow::new();
        w.keyframes = vec![kf(0.0), kf(1.0), kf(2.0)];
        w.landmarks = vec![
            Landmark {
                id: 0,
                anchor: 0,
                bearing: Vec3::new(0.0, 0.0, 1.0),
                inv_depth: 0.5,
            },
            Landmark {
                id: 1,
                anchor: 1,
                bearing: Vec3::new(0.1, 0.0, 1.0),
                inv_depth: 0.2,
            },
        ];
        w.observations = vec![
            Observation {
                landmark: 0,
                keyframe: 1,
                uv: [0.0, 0.0],
            },
            Observation {
                landmark: 0,
                keyframe: 2,
                uv: [0.0, 0.0],
            },
            Observation {
                landmark: 1,
                keyframe: 2,
                uv: [0.0, 0.0],
            },
        ];
        assert_eq!(w.num_keyframes(), 3);
        assert_eq!(w.num_landmarks(), 2);
        assert_eq!(w.state_dim(), 2 + 45);
        assert_eq!(w.kf_offset(1), 2 + 15);
        assert!((w.avg_observations_per_feature() - 1.5).abs() < 1e-12);
        assert!(w.validate());
    }

    #[test]
    fn validate_catches_bad_indices() {
        let mut w = SlidingWindow::new();
        w.keyframes = vec![kf(0.0)];
        w.observations = vec![Observation {
            landmark: 5,
            keyframe: 0,
            uv: [0.0, 0.0],
        }];
        assert!(!w.validate());
    }
}
