//! Marginalization prior in square-root form.
//!
//! Marginalization (paper Sec. 3.1) produces an information matrix `Hp` and
//! vector `rp` that constrain the next window. We store the prior in
//! square-root (Jacobian/residual) form — `J = Lᵀ` with `L·Lᵀ = Hp` — so it
//! behaves exactly like any other factor: it can be re-evaluated at new
//! linearization points and contributes `JᵀJ` / `−Jᵀr` to the normal
//! equations.

use crate::solver::SolveError;
use crate::window::{KeyframeState, SlidingWindow, STATE_DIM};
use archytas_math::{DMat, DVec};

/// Prior over the keyframe states of a window, produced by marginalizing the
/// previous window's oldest keyframe and its landmarks.
#[derive(Debug, Clone)]
pub struct Prior {
    /// Square-root information `J` (`dim × dim`, `JᵀJ = Hp`).
    jacobian: DMat,
    /// Residual at the linearization point (`r0`, with `Jᵀr0 = −rp`).
    residual0: DVec,
    /// Keyframe states at which the prior was linearized, oldest first.
    lin_states: Vec<KeyframeState>,
}

impl Prior {
    /// Builds a prior from information form `(hp, rp)` over `lin_states`.
    ///
    /// `hp` must be `15·k × 15·k` where `k = lin_states.len()`; it is
    /// regularized by `epsilon` on the diagonal before factorization so that
    /// gauge-deficient information matrices remain factorizable.
    ///
    /// # Panics
    ///
    /// Panics when the dimensions disagree or factorization fails even after
    /// regularization. Callers that must survive a corrupted information
    /// matrix (the pipeline's degradation ladder) use
    /// [`Prior::try_from_information`] instead.
    pub fn from_information(
        hp: &DMat,
        rp: &DVec,
        lin_states: Vec<KeyframeState>,
        epsilon: f64,
    ) -> Self {
        Self::try_from_information(hp, rp, lin_states, epsilon)
            .expect("prior: Hp not factorizable even after heavy regularization")
    }

    /// Fallible form of [`Prior::from_information`]: data-dependent
    /// factorization failure (an `Hp` that stays non-SPD — or non-finite —
    /// through the full regularization escalation) comes back as an `Err`
    /// instead of a panic.
    ///
    /// Dimension mismatches remain programmer errors and still panic.
    pub fn try_from_information(
        hp: &DMat,
        rp: &DVec,
        lin_states: Vec<KeyframeState>,
        epsilon: f64,
    ) -> Result<Self, SolveError> {
        let dim = STATE_DIM * lin_states.len();
        assert_eq!(hp.rows(), dim, "prior: Hp dimension mismatch");
        assert_eq!(rp.len(), dim, "prior: rp dimension mismatch");
        if !rp.all_finite() {
            return Err(SolveError::NonFinite);
        }
        // Far from convergence the Schur complement can be indefinite by
        // more than `epsilon`; escalate the regularization until the
        // factorization succeeds (each step only weakens the prior, which is
        // the conservative direction).
        let mut eps = epsilon.max(1e-12);
        let scale = hp.max_abs().max(1.0);
        if !scale.is_finite() {
            return Err(SolveError::NonFinite);
        }
        let l = loop {
            match hp.add_diagonal(eps).cholesky() {
                Ok(chol) => break chol.into_l(),
                Err(e) => {
                    eps *= 100.0;
                    if eps > scale * 10.0 {
                        return Err(SolveError::Linear(e));
                    }
                }
            }
        };
        // J = Lᵀ, r0 chosen so that Jᵀ·r0 = −rp  ⇒  L·r0 = −rp.
        let jacobian = l.transpose();
        let residual0 = archytas_math::solve_lower(&l, &(-rp));
        Ok(Self {
            jacobian,
            residual0,
            lin_states,
        })
    }

    /// Number of keyframes this prior constrains.
    pub fn num_keyframes(&self) -> usize {
        self.lin_states.len()
    }

    /// Error-state dimension of the prior.
    pub fn dim(&self) -> usize {
        self.jacobian.cols()
    }

    /// Information matrix `Hp = JᵀJ` (dense; mainly for tests and for the
    /// hardware functional model, which consumes the information form).
    pub fn information(&self) -> DMat {
        self.jacobian.gram()
    }

    /// Tangent of the window's current keyframes relative to the
    /// linearization point.
    ///
    /// # Panics
    ///
    /// Panics when the window holds fewer keyframes than the prior covers.
    fn delta(&self, window: &SlidingWindow) -> DVec {
        assert!(
            window.num_keyframes() >= self.lin_states.len(),
            "prior: window has fewer keyframes than the prior covers"
        );
        let mut delta = DVec::zeros(self.dim());
        for (i, lin) in self.lin_states.iter().enumerate() {
            let d = window.keyframes[i].boxminus(lin);
            for (c, v) in d.iter().enumerate() {
                delta[i * STATE_DIM + c] = *v;
            }
        }
        delta
    }

    /// Current prior residual `r = r0 + J·δ`.
    pub fn residual(&self, window: &SlidingWindow) -> DVec {
        let delta = self.delta(window);
        &self.residual0 + &self.jacobian.mat_vec(&delta)
    }

    /// Prior cost `½‖r‖²` at the window's current estimate.
    pub fn cost(&self, window: &SlidingWindow) -> f64 {
        0.5 * self.residual(window).norm_squared()
    }

    /// Gradient `Jᵀ·r` of the prior cost at the window's current estimate,
    /// over the prior's own ordering (keyframes oldest first).
    pub fn gradient(&self, window: &SlidingWindow) -> DVec {
        self.jacobian.transpose_mat_vec(&self.residual(window))
    }

    /// Adds the prior's Gauss–Newton contribution to `(a, b)` and returns its
    /// cost. The prior occupies the keyframe block of the window ordering
    /// (columns `num_landmarks()..`).
    pub fn add_to_normal_equations(
        &self,
        window: &SlidingWindow,
        a: &mut DMat,
        b: &mut DVec,
    ) -> f64 {
        self.add_to_sink(window, &mut crate::problem::DenseSink { a, b })
    }

    /// Sink-generic form of [`Prior::add_to_normal_equations`]: the same
    /// writes in the same order, routed through the assembly sink so the
    /// dense and block-sparse paths stay bit-identical.
    pub(crate) fn add_to_sink<S: crate::problem::NormalEqSink>(
        &self,
        window: &SlidingWindow,
        sink: &mut S,
    ) -> f64 {
        let off = window.kf_offset(0);
        let r = self.residual(window);
        let h = self.information();
        let grad = self.jacobian.transpose_mat_vec(&r);
        for i in 0..self.dim() {
            sink.sub_b(off + i, grad[i]);
            // One dense run per row (scale 1 is exact; see the run method's
            // zero-skip note for why dropping `±0.0` entries is bit-safe).
            sink.add_a_row(off + i, off, h.row(i), 1.0);
        }
        0.5 * r.norm_squared()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Pose, Quat, Vec3};

    fn states(n: usize) -> Vec<KeyframeState> {
        (0..n)
            .map(|i| {
                KeyframeState::at_pose(
                    Pose::new(Quat::IDENTITY, Vec3::new(i as f64, 0.0, 0.0)),
                    i as f64,
                )
            })
            .collect()
    }

    fn spd_info(dim: usize) -> DMat {
        let b = DMat::from_fn(dim, dim, |i, j| ((i * 5 + j * 3) % 7) as f64 * 0.1);
        b.gram().add_diagonal(1.0)
    }

    #[test]
    fn information_roundtrip() {
        let lin = states(1);
        let hp = spd_info(STATE_DIM);
        let rp = DVec::from((0..STATE_DIM).map(|i| i as f64 * 0.01).collect::<Vec<_>>());
        let prior = Prior::from_information(&hp, &rp, lin, 0.0);
        assert!((&prior.information() - &hp).max_abs() < 1e-9);
    }

    #[test]
    fn gradient_at_linearization_matches_rp() {
        let lin = states(1);
        let hp = spd_info(STATE_DIM);
        let rp = DVec::from(
            (0..STATE_DIM)
                .map(|i| (i as f64) * 0.1 - 0.5)
                .collect::<Vec<_>>(),
        );
        let prior = Prior::from_information(&hp, &rp, lin.clone(), 0.0);

        let mut w = SlidingWindow::new();
        w.keyframes = lin;
        // At the linearization point the b-contribution must be exactly +rp.
        let dim = w.state_dim();
        let mut a = DMat::zeros(dim, dim);
        let mut b = DVec::zeros(dim);
        prior.add_to_normal_equations(&w, &mut a, &mut b);
        for i in 0..STATE_DIM {
            assert!(
                (b[i] - rp[i]).abs() < 1e-9,
                "b[{i}] = {} vs rp {}",
                b[i],
                rp[i]
            );
        }
    }

    #[test]
    fn cost_grows_away_from_minimum() {
        let lin = states(2);
        let dim = STATE_DIM * 2;
        let hp = spd_info(dim);
        let rp = DVec::zeros(dim); // minimum exactly at the linearization point
        let prior = Prior::from_information(&hp, &rp, lin.clone(), 0.0);

        let mut w = SlidingWindow::new();
        w.keyframes = lin;
        let at_lin = prior.cost(&w);
        w.keyframes[1] = w.keyframes[1].boxplus(&[0.1; STATE_DIM]);
        let moved = prior.cost(&w);
        assert!(moved > at_lin);
    }

    #[test]
    fn regularization_rescues_singular_information() {
        let lin = states(1);
        let hp = DMat::zeros(STATE_DIM, STATE_DIM); // completely uninformative
        let rp = DVec::zeros(STATE_DIM);
        let prior = Prior::from_information(&hp, &rp, lin, 1e-8);
        assert_eq!(prior.dim(), STATE_DIM);
    }

    #[test]
    fn non_finite_information_is_an_error_not_a_panic() {
        let lin = states(1);
        let mut hp = spd_info(STATE_DIM);
        hp.set(0, 0, f64::NAN);
        let rp = DVec::zeros(STATE_DIM);
        assert!(Prior::try_from_information(&hp, &rp, lin.clone(), 1e-9).is_err());

        let hp = spd_info(STATE_DIM);
        let mut rp = DVec::zeros(STATE_DIM);
        rp[0] = f64::INFINITY;
        assert!(matches!(
            Prior::try_from_information(&hp, &rp, lin, 1e-9),
            Err(crate::SolveError::NonFinite)
        ));
    }
}
