//! Residuals and analytic Jacobians of the MAP objective (paper Eq. 2).
//!
//! Three factor families:
//!
//! * **Visual** — reprojection of an inverse-depth landmark from its anchor
//!   keyframe into an observing keyframe (2-dim residual on the normalized
//!   image plane).
//! * **IMU** — preintegrated relative-motion constraint between consecutive
//!   keyframes (15-dim residual).
//! * **Prior** — the marginalization product `(Hp, rp)` in square-root form
//!   (see `crate::marginalization`).
//!
//! Jacobians follow the *right* perturbation convention of
//! [`Pose::boxplus`](crate::geometry::Pose::boxplus); every analytic block is
//! cross-checked against numeric differentiation in the tests.

use crate::geometry::{Mat3, Pose, Vec3};
use crate::imu::{Preintegration, GRAVITY};
use crate::window::KeyframeState;

/// Pose-tangent sub-block ordering within a keyframe error state.
pub const THETA: usize = 0;
/// Offset of the translation block.
pub const TRANS: usize = 3;
/// Offset of the velocity block.
pub const VEL: usize = 6;
/// Offset of the gyro-bias block.
pub const BG: usize = 9;
/// Offset of the accel-bias block.
pub const BA: usize = 12;

/// Evaluated visual factor: residual and Jacobians.
#[derive(Debug, Clone)]
pub struct VisualEval {
    /// 2-dim residual (predicted − measured, normalized plane).
    pub residual: [f64; 2],
    /// ∂r/∂(anchor pose) — 2×6 `[δθ, δp]`.
    pub j_anchor: [[f64; 6]; 2],
    /// ∂r/∂(observing pose) — 2×6 `[δθ, δp]`.
    pub j_obs: [[f64; 6]; 2],
    /// ∂r/∂(inverse depth) — 2×1.
    pub j_rho: [f64; 2],
}

/// Evaluates the reprojection residual of a landmark with bearing `bearing`
/// and inverse depth `rho`, anchored at `anchor` and measured at `uv`
/// (normalized) from `obs`.
///
/// Returns `None` when the landmark projects behind the observing camera —
/// such observations are dropped from the problem, mirroring how a tracking
/// front-end would discard them.
pub fn evaluate_visual(
    anchor: &Pose,
    obs: &Pose,
    bearing: &Vec3,
    rho: f64,
    uv: [f64; 2],
) -> Option<VisualEval> {
    // Landmark in the anchor camera frame, the world, then the observer.
    let p_a = *bearing * (1.0 / rho);
    let p_w = anchor.transform(&p_a);
    let p_c = obs.inverse_transform(&p_w);
    let z = p_c.z();
    if z <= 1e-6 {
        return None;
    }
    let inv_z = 1.0 / z;
    let residual = [p_c.x() * inv_z - uv[0], p_c.y() * inv_z - uv[1]];

    // ∂(projection)/∂p_c — 2×3.
    let j_proj = [
        [inv_z, 0.0, -p_c.x() * inv_z * inv_z],
        [0.0, inv_z, -p_c.y() * inv_z * inv_z],
    ];

    let r_a = anchor.rot.to_mat();
    let r_o_t = obs.rot.to_mat().transpose();

    // Chain rule pieces (see module docs for the perturbation convention):
    //   ∂p_c/∂δθ_a = −R_oᵀ·R_a·[p_a]×      ∂p_c/∂δp_a = R_oᵀ
    //   ∂p_c/∂δθ_o = [p_c]×                ∂p_c/∂δp_o = −R_oᵀ
    //   ∂p_c/∂ρ    = −R_oᵀ·R_a·bearing/ρ²
    let rot_ao = mat3_mul(&r_o_t, &r_a);
    let d_theta_a = mat3_scale(&mat3_mul(&rot_ao, &p_a.skew()), -1.0);
    let d_p_a = r_o_t;
    let d_theta_o = p_c.skew();
    let d_p_o = mat3_scale(&r_o_t, -1.0);
    let d_rho = rot_ao.mul_vec(&(*bearing * (-1.0 / (rho * rho))));

    let mut j_anchor = [[0.0; 6]; 2];
    let mut j_obs = [[0.0; 6]; 2];
    let mut j_rho = [0.0; 2];
    #[allow(clippy::needless_range_loop)] // parallel-indexed 2x3x3 contraction
    for r in 0..2 {
        for c in 0..3 {
            let mut acc_ta = 0.0;
            let mut acc_pa = 0.0;
            let mut acc_to = 0.0;
            let mut acc_po = 0.0;
            for k in 0..3 {
                acc_ta += j_proj[r][k] * d_theta_a.get(k, c);
                acc_pa += j_proj[r][k] * d_p_a.get(k, c);
                acc_to += j_proj[r][k] * d_theta_o.get(k, c);
                acc_po += j_proj[r][k] * d_p_o.get(k, c);
            }
            j_anchor[r][THETA + c] = acc_ta;
            j_anchor[r][TRANS + c] = acc_pa;
            j_obs[r][THETA + c] = acc_to;
            j_obs[r][TRANS + c] = acc_po;
        }
        j_rho[r] = j_proj[r][0] * d_rho.x() + j_proj[r][1] * d_rho.y() + j_proj[r][2] * d_rho.z();
    }

    Some(VisualEval {
        residual,
        j_anchor,
        j_obs,
        j_rho,
    })
}

/// Residual-only form of [`evaluate_visual`], for cost evaluation.
///
/// Computes exactly the residual prefix of [`evaluate_visual`] — the same
/// transform chain, the same `z` gate, the same operation order — and skips
/// the Jacobian chain rule entirely, so LM step acceptance (which only needs
/// the cost) pays about a third of a full linearization. Bit-identical to
/// `evaluate_visual(..).map(|ev| ev.residual)`.
pub fn evaluate_visual_residual(
    anchor: &Pose,
    obs: &Pose,
    bearing: &Vec3,
    rho: f64,
    uv: [f64; 2],
) -> Option<[f64; 2]> {
    let p_a = *bearing * (1.0 / rho);
    let p_w = anchor.transform(&p_a);
    let p_c = obs.inverse_transform(&p_w);
    let z = p_c.z();
    if z <= 1e-6 {
        return None;
    }
    let inv_z = 1.0 / z;
    Some([p_c.x() * inv_z - uv[0], p_c.y() * inv_z - uv[1]])
}

/// Evaluated IMU factor: 15-dim residual and Jacobians with respect to both
/// keyframe error states.
#[derive(Debug, Clone)]
pub struct ImuEval {
    /// Residual `[r_q, r_p, r_v, r_bg, r_ba]`.
    pub residual: [f64; 15],
    /// ∂r/∂(state i) — 15×15.
    pub j_i: [[f64; 15]; 15],
    /// ∂r/∂(state j) — 15×15.
    pub j_j: [[f64; 15]; 15],
}

/// Evaluates the preintegrated IMU residual between keyframes `si` and `sj`.
///
/// The rotation-block Jacobians use the standard first-order approximation
/// `Jr⁻¹ ≈ I`, accurate near convergence where the residual is small.
pub fn evaluate_imu(si: &KeyframeState, sj: &KeyframeState, pre: &Preintegration) -> ImuEval {
    let dt = pre.dt;
    let (dq_hat, dp_hat, dv_hat) = pre.corrected(&si.bg, &si.ba);

    let r_i_t = si.pose.rot.to_mat().transpose();
    let g = GRAVITY;

    // Position / velocity residuals in keyframe i's body frame.
    let p_term = sj.pose.trans - si.pose.trans - si.velocity * dt - g * (0.5 * dt * dt);
    let v_term = sj.velocity - si.velocity - g * dt;
    let rp_body = r_i_t.mul_vec(&p_term);
    let rp = rp_body - dp_hat;
    let rv_body = r_i_t.mul_vec(&v_term);
    let rv = rv_body - dv_hat;

    // Rotation residual r_q = Log(Δq̂⁻¹ ⊗ q_i⁻¹ ⊗ q_j).
    let q_err = dq_hat
        .inverse()
        .mul(&si.pose.rot.inverse().mul(&sj.pose.rot));
    let rq = q_err.log();

    let rbg = sj.bg - si.bg;
    let rba = sj.ba - si.ba;

    let mut residual = [0.0; 15];
    residual[0..3].copy_from_slice(&rq.0);
    residual[3..6].copy_from_slice(&rp.0);
    residual[6..9].copy_from_slice(&rv.0);
    residual[9..12].copy_from_slice(&rbg.0);
    residual[12..15].copy_from_slice(&rba.0);

    let mut j_i = [[0.0; 15]; 15];
    let mut j_j = [[0.0; 15]; 15];

    // --- rotation rows (0..3) ---
    // With r_q = Log(Δq̂⁻¹ ⊗ q_i⁻¹ ⊗ q_j) and right perturbations:
    //   ∂r_q/∂δθ_i = −Jl⁻¹(r_q)·ΔR̂ᵀ,  ∂r_q/∂δθ_j = Jr⁻¹(r_q),
    //   ∂r_q/∂bg_i = −Jl⁻¹(r_q)·J_q_bg,
    // using the first-order inverse-Jacobian expansions I ± ½[r_q]×.
    let jl_inv = Mat3::IDENTITY - rq.skew().scale(0.5);
    let jr_inv = Mat3::IDENTITY + rq.skew().scale(0.5);
    let dr_hat_t = dq_hat.to_mat().transpose();
    set_block(&mut j_i, 0, THETA, &mat3_scale(&(jl_inv * dr_hat_t), -1.0));
    set_block(&mut j_j, 0, THETA, &jr_inv);
    set_block(&mut j_i, 0, BG, &mat3_scale(&(jl_inv * pre.j_q_bg), -1.0));

    // --- position rows (3..6) ---
    set_block(&mut j_i, 3, THETA, &rp_body.skew());
    set_block(&mut j_i, 3, TRANS, &mat3_scale(&r_i_t, -1.0));
    set_block(&mut j_i, 3, VEL, &mat3_scale(&r_i_t, -dt));
    set_block(&mut j_i, 3, BG, &mat3_scale(&pre.j_p_bg, -1.0));
    set_block(&mut j_i, 3, BA, &mat3_scale(&pre.j_p_ba, -1.0));
    set_block(&mut j_j, 3, TRANS, &r_i_t);

    // --- velocity rows (6..9) ---
    set_block(&mut j_i, 6, THETA, &rv_body.skew());
    set_block(&mut j_i, 6, VEL, &mat3_scale(&r_i_t, -1.0));
    set_block(&mut j_i, 6, BG, &mat3_scale(&pre.j_v_bg, -1.0));
    set_block(&mut j_i, 6, BA, &mat3_scale(&pre.j_v_ba, -1.0));
    set_block(&mut j_j, 6, VEL, &r_i_t);

    // --- bias rows (9..15): simple differences ---
    set_block(&mut j_i, 9, BG, &mat3_scale(&Mat3::IDENTITY, -1.0));
    set_block(&mut j_j, 9, BG, &Mat3::IDENTITY);
    set_block(&mut j_i, 12, BA, &mat3_scale(&Mat3::IDENTITY, -1.0));
    set_block(&mut j_j, 12, BA, &Mat3::IDENTITY);

    ImuEval { residual, j_i, j_j }
}

/// Per-residual information weights (inverse standard deviations).
///
/// These play the role of the covariance matrices `Cᵢ` in Eq. 2; the paper
/// never evaluates covariance fidelity, so scalar weights per residual block
/// are sufficient and keep the on-chip parameter footprint matching the
/// hardware template.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactorWeights {
    /// Visual residual weight (≈ fx/σ_px).
    pub visual: f64,
    /// IMU rotation weight.
    pub imu_q: f64,
    /// IMU position weight.
    pub imu_p: f64,
    /// IMU velocity weight.
    pub imu_v: f64,
    /// Bias random-walk weight.
    pub imu_bias: f64,
    /// Huber threshold for visual residuals, in normalized-plane units
    /// (`None` disables robust weighting — the exact historical quadratic
    /// path, bit for bit). Observations whose residual norm exceeds the
    /// threshold are down-weighted by `δ/‖r‖` (IRLS), bounding the influence
    /// of outlier tracks.
    pub huber_delta: Option<f64>,
}

impl Default for FactorWeights {
    fn default() -> Self {
        // The IMU weights are matched to the synthetic IMU's actual noise
        // (they are information weights ≈ 1/σ of the preintegrated
        // quantities); under-weighting the IMU lets the monocular scale
        // random-walk and inverts the iteration-vs-accuracy trend of
        // Fig. 12.
        Self {
            visual: 460.0, // one-pixel noise at EuRoC-like focal length
            imu_q: 2000.0,
            imu_p: 1500.0,
            imu_v: 800.0,
            imu_bias: 700.0,
            huber_delta: None,
        }
    }
}

impl FactorWeights {
    /// Weight of IMU residual row `r` (0-based within the 15-dim residual).
    pub fn imu_row(&self, r: usize) -> f64 {
        match r {
            0..=2 => self.imu_q,
            3..=5 => self.imu_p,
            6..=8 => self.imu_v,
            _ => self.imu_bias,
        }
    }

    /// This weight set with Huber robust weighting at threshold `delta`
    /// (normalized-plane units; a few pixels over the focal length is
    /// typical).
    pub fn with_huber(self, delta: f64) -> Self {
        Self {
            huber_delta: Some(delta),
            ..self
        }
    }

    /// IRLS robust scale for a visual residual `(e0, e1)`: `1` inside the
    /// Huber threshold, `δ/‖e‖` outside, `1` when robust weighting is off.
    ///
    /// The off case returns the constant `1.0` without touching the
    /// residual, so multiplying by it preserves the historical bit pattern
    /// of every weighted product.
    pub fn visual_robust_scale(&self, e0: f64, e1: f64) -> f64 {
        match self.huber_delta {
            None => 1.0,
            Some(delta) => {
                let rn = (e0 * e0 + e1 * e1).sqrt();
                if rn <= delta {
                    1.0
                } else {
                    delta / rn
                }
            }
        }
    }
}

fn set_block(dst: &mut [[f64; 15]; 15], row: usize, col: usize, m: &Mat3) {
    for i in 0..3 {
        for j in 0..3 {
            dst[row + i][col + j] = m.get(i, j);
        }
    }
}

fn mat3_mul(a: &Mat3, b: &Mat3) -> Mat3 {
    *a * *b
}

fn mat3_scale(a: &Mat3, s: f64) -> Mat3 {
    a.scale(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Quat;
    use crate::imu::ImuSample;

    fn test_poses() -> (Pose, Pose) {
        let anchor = Pose::new(
            Quat::exp(&Vec3::new(0.05, -0.02, 0.1)),
            Vec3::new(0.0, 0.0, 0.0),
        );
        let obs = Pose::new(
            Quat::exp(&Vec3::new(-0.03, 0.04, 0.02)),
            Vec3::new(0.8, 0.1, -0.05),
        );
        (anchor, obs)
    }

    #[test]
    fn visual_residual_zero_at_consistent_measurement() {
        let (anchor, obs) = test_poses();
        let bearing = Vec3::new(0.2, -0.1, 1.0);
        let rho = 0.25;
        // Generate the "measurement" by projecting the true landmark.
        let p_w = anchor.transform(&(bearing * (1.0 / rho)));
        let p_c = obs.inverse_transform(&p_w);
        let uv = [p_c.x() / p_c.z(), p_c.y() / p_c.z()];
        let eval = evaluate_visual(&anchor, &obs, &bearing, rho, uv).unwrap();
        assert!(eval.residual[0].abs() < 1e-12);
        assert!(eval.residual[1].abs() < 1e-12);
    }

    /// The residual-only evaluator must match the full one bit for bit,
    /// including the behind-camera `None` gate — LM step acceptance depends
    /// on this equivalence.
    #[test]
    fn visual_residual_only_matches_full_eval_bitwise() {
        let (anchor, obs) = test_poses();
        for l in 0..40 {
            let bearing = Vec3::new(0.05 * l as f64 - 1.0, 0.03 * (l % 7) as f64 - 0.1, 1.0);
            let rho = 0.1 + 0.07 * (l % 9) as f64;
            let uv = [0.02 * l as f64 - 0.4, -0.015 * l as f64 + 0.3];
            let full = evaluate_visual(&anchor, &obs, &bearing, rho, uv);
            let ronly = evaluate_visual_residual(&anchor, &obs, &bearing, rho, uv);
            match (full, ronly) {
                (None, None) => {}
                (Some(ev), Some(r)) => {
                    assert_eq!(ev.residual[0].to_bits(), r[0].to_bits(), "lm {l}");
                    assert_eq!(ev.residual[1].to_bits(), r[1].to_bits(), "lm {l}");
                }
                (f, r) => panic!("gate mismatch at lm {l}: {:?} vs {:?}", f.is_some(), r),
            }
        }
        // And at least one case must actually hit the behind-camera gate.
        let behind = Pose::new(Quat::IDENTITY, Vec3::new(0.0, 0.0, 10.0));
        assert!(evaluate_visual_residual(
            &Pose::IDENTITY,
            &behind,
            &Vec3::new(0.0, 0.0, 1.0),
            0.25,
            [0.0, 0.0]
        )
        .is_none());
    }

    #[test]
    fn visual_rejects_behind_camera() {
        let anchor = Pose::IDENTITY;
        let obs = Pose::new(Quat::IDENTITY, Vec3::new(0.0, 0.0, 10.0)); // ahead of the point
        let eval = evaluate_visual(&anchor, &obs, &Vec3::new(0.0, 0.0, 1.0), 0.25, [0.0, 0.0]);
        assert!(eval.is_none());
    }

    /// Numeric-vs-analytic check of every visual Jacobian block.
    #[test]
    fn visual_jacobians_match_numeric() {
        let (anchor, obs) = test_poses();
        let bearing = Vec3::new(0.15, 0.25, 1.0);
        let rho = 0.3;
        let uv = [0.1, -0.05];
        let eval = evaluate_visual(&anchor, &obs, &bearing, rho, uv).unwrap();
        let eps = 1e-7;

        // Anchor and observer pose blocks.
        for axis in 0..6 {
            let mut dtheta = Vec3::ZERO;
            let mut dp = Vec3::ZERO;
            if axis < 3 {
                dtheta.0[axis] = eps;
            } else {
                dp.0[axis - 3] = eps;
            }
            let anchor_p = anchor.boxplus(&dtheta, &dp);
            let ev = evaluate_visual(&anchor_p, &obs, &bearing, rho, uv).unwrap();
            for r in 0..2 {
                let numeric = (ev.residual[r] - eval.residual[r]) / eps;
                assert!(
                    (numeric - eval.j_anchor[r][axis]).abs() < 1e-5,
                    "anchor axis {axis} row {r}: numeric {numeric} vs analytic {}",
                    eval.j_anchor[r][axis]
                );
            }
            let obs_p = obs.boxplus(&dtheta, &dp);
            let ev = evaluate_visual(&anchor, &obs_p, &bearing, rho, uv).unwrap();
            for r in 0..2 {
                let numeric = (ev.residual[r] - eval.residual[r]) / eps;
                assert!(
                    (numeric - eval.j_obs[r][axis]).abs() < 1e-5,
                    "obs axis {axis} row {r}: numeric {numeric} vs analytic {}",
                    eval.j_obs[r][axis]
                );
            }
        }

        // Inverse-depth block.
        let ev = evaluate_visual(&anchor, &obs, &bearing, rho + eps, uv).unwrap();
        for r in 0..2 {
            let numeric = (ev.residual[r] - eval.residual[r]) / eps;
            assert!((numeric - eval.j_rho[r]).abs() < 1e-5, "rho row {r}");
        }
    }

    fn imu_test_states() -> (KeyframeState, KeyframeState, Preintegration) {
        let samples: Vec<ImuSample> = (0..100)
            .map(|_| ImuSample {
                gyro: Vec3::new(0.1, -0.05, 0.2),
                accel: Vec3::new(0.5, 0.2, 9.9),
                dt: 0.005,
            })
            .collect();
        let pre = Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO);
        let si = KeyframeState {
            pose: Pose::new(
                Quat::exp(&Vec3::new(0.02, 0.01, -0.03)),
                Vec3::new(1.0, 2.0, 3.0),
            ),
            velocity: Vec3::new(0.5, -0.2, 0.1),
            bg: Vec3::new(0.002, -0.001, 0.0015),
            ba: Vec3::new(0.01, 0.02, -0.01),
            timestamp: 0.0,
        };
        // Make sj roughly consistent with the preintegration so residuals are
        // small (the regime where the first-order rotation Jacobians hold).
        let (dq, dp, dv) = pre.corrected(&si.bg, &si.ba);
        let dt = pre.dt;
        let sj = KeyframeState {
            pose: Pose::new(
                si.pose.rot.mul(&dq).normalized(),
                si.pose.trans
                    + si.velocity * dt
                    + GRAVITY * (0.5 * dt * dt)
                    + si.pose.rot.rotate(&dp),
            ),
            velocity: si.velocity + GRAVITY * dt + si.pose.rot.rotate(&dv),
            bg: si.bg,
            ba: si.ba,
            timestamp: dt,
        };
        (si, sj, pre)
    }

    #[test]
    fn imu_residual_zero_at_consistent_states() {
        let (si, sj, pre) = imu_test_states();
        let eval = evaluate_imu(&si, &sj, &pre);
        for (k, r) in eval.residual.iter().enumerate() {
            assert!(r.abs() < 1e-9, "residual[{k}] = {r}");
        }
    }

    /// Numeric-vs-analytic check of the IMU Jacobians at small residual.
    #[test]
    fn imu_jacobians_match_numeric() {
        let (si, sj, pre) = imu_test_states();
        // Perturb sj slightly so the residual is small but nonzero.
        let mut perturb = [0.0; 15];
        perturb[1] = 0.005;
        perturb[4] = -0.01;
        perturb[7] = 0.02;
        let sj = sj.boxplus(&perturb);
        let base = evaluate_imu(&si, &sj, &pre);
        let eps = 1e-6;

        for axis in 0..15 {
            let mut delta = [0.0; 15];
            delta[axis] = eps;

            let si_p = si.boxplus(&delta);
            let ev = evaluate_imu(&si_p, &sj, &pre);
            for r in 0..15 {
                let numeric = (ev.residual[r] - base.residual[r]) / eps;
                assert!(
                    (numeric - base.j_i[r][axis]).abs() < 2e-3,
                    "j_i[{r}][{axis}]: numeric {numeric} vs analytic {}",
                    base.j_i[r][axis]
                );
            }

            let sj_p = sj.boxplus(&delta);
            let ev = evaluate_imu(&si, &sj_p, &pre);
            for r in 0..15 {
                let numeric = (ev.residual[r] - base.residual[r]) / eps;
                assert!(
                    (numeric - base.j_j[r][axis]).abs() < 2e-3,
                    "j_j[{r}][{axis}]: numeric {numeric} vs analytic {}",
                    base.j_j[r][axis]
                );
            }
        }
    }

    #[test]
    fn weights_rows() {
        let w = FactorWeights::default();
        assert_eq!(w.imu_row(0), w.imu_q);
        assert_eq!(w.imu_row(4), w.imu_p);
        assert_eq!(w.imu_row(8), w.imu_v);
        assert_eq!(w.imu_row(14), w.imu_bias);
    }
}
