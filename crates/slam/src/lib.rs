//! Sliding-window MAP (maximum-a-posteriori) localization — the algorithm
//! Archytas accelerates (paper Sec. 2–3).
//!
//! The crate implements the full estimator the paper targets: a
//! visual–inertial sliding window optimized with Levenberg–Marquardt, using
//! inverse-depth landmarks (diagonal information block → D-type Schur),
//! IMU preintegration, and marginalization producing the prior `(Hp, rp)`
//! for the following window. It is both the "golden" reference the hardware
//! functional model is checked against and the software implementation the
//! CPU baselines execute.
//!
//! # Example: optimize a two-keyframe window
//!
//! ```
//! use archytas_slam::{
//!     FactorWeights, KeyframeState, Landmark, LmConfig, Observation, Pose, Quat, SlidingWindow,
//!     Vec3, solve,
//! };
//!
//! let mut w = SlidingWindow::new();
//! let kf0 = KeyframeState::at_pose(Pose::IDENTITY, 0.0);
//! let kf1 = KeyframeState::at_pose(
//!     Pose::new(Quat::IDENTITY, Vec3::new(0.5, 0.0, 0.0)), 0.1);
//! w.keyframes = vec![kf0, kf1];
//! // One landmark 4 m ahead, observed from both keyframes.
//! let bearing = Vec3::new(0.1, 0.0, 1.0);
//! let p_w = kf0.pose.transform(&(bearing * 4.0));
//! let p_c1 = kf1.pose.inverse_transform(&p_w);
//! w.landmarks.push(Landmark { id: 0, anchor: 0, bearing, inv_depth: 0.3 });
//! w.observations.push(Observation {
//!     landmark: 0, keyframe: 1,
//!     uv: [p_c1.x() / p_c1.z(), p_c1.y() / p_c1.z()],
//! });
//! let report = solve(&mut w, &FactorWeights::default(), None, &LmConfig::default());
//! assert!(report.final_cost < 1e-9);
//! ```

#![warn(missing_docs)]

mod camera;
mod ekf;
mod factors;
mod geometry;
mod imu;
mod marginalization;
mod metrics;
mod prior;
mod problem;
mod solver;
mod window;

pub use camera::PinholeCamera;
pub use ekf::{EkfConfig, EkfVio};
pub use factors::{
    evaluate_imu, evaluate_visual, evaluate_visual_residual, FactorWeights, ImuEval, VisualEval,
    BA, BG, THETA, TRANS, VEL,
};
pub use geometry::{Mat3, Pose, Quat, Vec3};
pub use imu::{ImuSample, Preintegration, GRAVITY};
pub use marginalization::{
    drop_oldest, marginalize_oldest, try_marginalize_oldest, MarginalizationResult,
};
pub use metrics::{mean_stdev, relative_error, rmse_translation, TrajectoryMetrics};
pub use prior::Prior;
pub use problem::{
    apply_increment, build_block_normal_equations, build_normal_equations, evaluate_cost,
    BlockNormalEqInfo, NormalEquations, POSE_TANGENT_DIM,
};
pub use solver::{
    schur_linear_solver, solve, solve_in_workspace, solve_with, solve_with_in_workspace,
    DegradeReason, LinearSolver, LmConfig, SolveError, SolveOutcome, SolveReport, SolverWorkspace,
};
pub use window::{
    ImuConstraint, KeyframeState, Landmark, Observation, SlidingWindow, WindowWorkload, STATE_DIM,
};
