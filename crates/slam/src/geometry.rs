//! Minimal 3D geometry: vectors, rotation matrices, unit quaternions and
//! SE(3) poses with their SO(3) exponential/logarithm maps.
//!
//! Fixed-size arrays keep the per-factor math allocation-free; the solver
//! converts to `archytas_math` dense matrices only when assembling the global
//! Jacobian.

use std::ops::{Add, Mul, Neg, Sub};

/// 3-vector.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3(pub [f64; 3]);

impl Vec3 {
    /// Zero vector.
    pub const ZERO: Vec3 = Vec3([0.0; 3]);

    /// Creates a vector from components.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3([x, y, z])
    }

    /// X component.
    pub fn x(&self) -> f64 {
        self.0[0]
    }
    /// Y component.
    pub fn y(&self) -> f64 {
        self.0[1]
    }
    /// Z component.
    pub fn z(&self) -> f64 {
        self.0[2]
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Inner product.
    pub fn dot(&self, o: &Vec3) -> f64 {
        self.0[0] * o.0[0] + self.0[1] * o.0[1] + self.0[2] * o.0[2]
    }

    /// Cross product.
    pub fn cross(&self, o: &Vec3) -> Vec3 {
        Vec3([
            self.0[1] * o.0[2] - self.0[2] * o.0[1],
            self.0[2] * o.0[0] - self.0[0] * o.0[2],
            self.0[0] * o.0[1] - self.0[1] * o.0[0],
        ])
    }

    /// Unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics on the zero vector.
    pub fn normalized(&self) -> Vec3 {
        let n = self.norm();
        assert!(n > 0.0, "normalized: zero vector");
        *self * (1.0 / n)
    }

    /// Skew-symmetric (hat) matrix `[v]×` such that `[v]× w = v × w`.
    pub fn skew(&self) -> Mat3 {
        Mat3([
            [0.0, -self.0[2], self.0[1]],
            [self.0[2], 0.0, -self.0[0]],
            [-self.0[1], self.0[0], 0.0],
        ])
    }

    /// `true` when all components are finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3([self.0[0] + o.0[0], self.0[1] + o.0[1], self.0[2] + o.0[2]])
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3([self.0[0] - o.0[0], self.0[1] - o.0[1], self.0[2] - o.0[2]])
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3([-self.0[0], -self.0[1], -self.0[2]])
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3([self.0[0] * s, self.0[1] * s, self.0[2] * s])
    }
}

/// Row-major 3×3 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Mat3(pub [[f64; 3]; 3]);

impl Mat3 {
    /// Identity matrix.
    pub const IDENTITY: Mat3 = Mat3([[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]);

    /// Zero matrix.
    pub const ZERO: Mat3 = Mat3([[0.0; 3]; 3]);

    /// Transposed copy.
    pub fn transpose(&self) -> Mat3 {
        let m = &self.0;
        Mat3([
            [m[0][0], m[1][0], m[2][0]],
            [m[0][1], m[1][1], m[2][1]],
            [m[0][2], m[1][2], m[2][2]],
        ])
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &Vec3) -> Vec3 {
        Vec3([
            self.0[0][0] * v.0[0] + self.0[0][1] * v.0[1] + self.0[0][2] * v.0[2],
            self.0[1][0] * v.0[0] + self.0[1][1] * v.0[1] + self.0[1][2] * v.0[2],
            self.0[2][0] * v.0[0] + self.0[2][1] * v.0[1] + self.0[2][2] * v.0[2],
        ])
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.0[i][j]
    }

    /// Scales every element.
    pub fn scale(&self, s: f64) -> Mat3 {
        let mut out = *self;
        for row in &mut out.0 {
            for v in row {
                *v *= s;
            }
        }
        out
    }

    /// Frobenius distance to another matrix (for tests).
    pub fn distance(&self, o: &Mat3) -> f64 {
        let mut acc = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                let d = self.0[i][j] - o.0[i][j];
                acc += d * d;
            }
        }
        acc.sqrt()
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.0[i][j] =
                    self.0[i][0] * o.0[0][j] + self.0[i][1] * o.0[1][j] + self.0[i][2] * o.0[2][j];
            }
        }
        out
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.0[i][j] = self.0[i][j] + o.0[i][j];
            }
        }
        out
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, o: Mat3) -> Mat3 {
        let mut out = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                out.0[i][j] = self.0[i][j] - o.0[i][j];
            }
        }
        out
    }
}

/// Unit quaternion `(w, x, y, z)` representing a rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part.
    pub v: Vec3,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        v: Vec3::ZERO,
    };

    /// Quaternion from an axis-angle rotation vector `θ·axis` via the SO(3)
    /// exponential map.
    pub fn exp(theta: &Vec3) -> Quat {
        let angle = theta.norm();
        if angle < 1e-12 {
            // First-order expansion keeps the map smooth through zero.
            Quat {
                w: 1.0,
                v: *theta * 0.5,
            }
            .normalized()
        } else {
            let half = angle * 0.5;
            Quat {
                w: half.cos(),
                v: *theta * (half.sin() / angle),
            }
        }
    }

    /// Rotation vector (SO(3) logarithm) of this quaternion.
    pub fn log(&self) -> Vec3 {
        let q = if self.w < 0.0 { self.neg() } else { *self };
        let sin_half = q.v.norm();
        if sin_half < 1e-12 {
            q.v * 2.0
        } else {
            let half = sin_half.atan2(q.w);
            q.v * (2.0 * half / sin_half)
        }
    }

    fn neg(&self) -> Quat {
        Quat {
            w: -self.w,
            v: -self.v,
        }
    }

    /// Hamilton product `self ⊗ o`.
    pub fn mul(&self, o: &Quat) -> Quat {
        Quat {
            w: self.w * o.w - self.v.dot(&o.v),
            v: o.v * self.w + self.v * o.w + self.v.cross(&o.v),
        }
    }

    /// Inverse rotation (conjugate for unit quaternions).
    pub fn inverse(&self) -> Quat {
        Quat {
            w: self.w,
            v: -self.v,
        }
    }

    /// Renormalizes to a unit quaternion.
    pub fn normalized(&self) -> Quat {
        let n = (self.w * self.w + self.v.dot(&self.v)).sqrt();
        Quat {
            w: self.w / n,
            v: self.v * (1.0 / n),
        }
    }

    /// Rotates a vector.
    pub fn rotate(&self, p: &Vec3) -> Vec3 {
        // v' = p + 2·w·(v × p) + 2·v × (v × p)
        let t = self.v.cross(p) * 2.0;
        *p + t * self.w + self.v.cross(&t)
    }

    /// Rotation matrix equivalent.
    pub fn to_mat(&self) -> Mat3 {
        let (w, x, y, z) = (self.w, self.v.x(), self.v.y(), self.v.z());
        Mat3([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ])
    }

    /// Angular distance in radians to another rotation.
    pub fn angle_to(&self, o: &Quat) -> f64 {
        self.inverse().mul(o).log().norm()
    }
}

/// Rigid-body pose mapping body coordinates to world coordinates:
/// `p_world = rot · p_body + trans`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    /// Orientation (body → world).
    pub rot: Quat,
    /// Position of the body origin in the world frame.
    pub trans: Vec3,
}

impl Pose {
    /// The identity pose.
    pub const IDENTITY: Pose = Pose {
        rot: Quat::IDENTITY,
        trans: Vec3::ZERO,
    };

    /// Creates a pose from orientation and position.
    pub fn new(rot: Quat, trans: Vec3) -> Self {
        Self { rot, trans }
    }

    /// Maps a body-frame point to the world frame.
    pub fn transform(&self, p: &Vec3) -> Vec3 {
        self.rot.rotate(p) + self.trans
    }

    /// Maps a world-frame point to the body frame.
    pub fn inverse_transform(&self, p: &Vec3) -> Vec3 {
        self.rot.inverse().rotate(&(*p - self.trans))
    }

    /// Pose composition `self ∘ o` (first apply `o`, then `self`).
    pub fn compose(&self, o: &Pose) -> Pose {
        Pose {
            rot: self.rot.mul(&o.rot),
            trans: self.rot.rotate(&o.trans) + self.trans,
        }
    }

    /// Inverse pose.
    pub fn inverse(&self) -> Pose {
        let rot_inv = self.rot.inverse();
        Pose {
            rot: rot_inv,
            trans: -rot_inv.rotate(&self.trans),
        }
    }

    /// Retraction: perturbs the pose by a 6-dim tangent `[δθ; δp]` using a
    /// *right* perturbation on the rotation (`R ← R·Exp(δθ)`) and an additive
    /// one on the translation. All factor Jacobians in this crate are taken
    /// with respect to this convention.
    pub fn boxplus(&self, dtheta: &Vec3, dtrans: &Vec3) -> Pose {
        Pose {
            rot: self.rot.mul(&Quat::exp(dtheta)).normalized(),
            trans: self.trans + *dtrans,
        }
    }

    /// Translational distance to another pose.
    pub fn translation_distance(&self, o: &Pose) -> f64 {
        (self.trans - o.trans).norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vec_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a.dot(&b), 32.0);
        assert_eq!(a.cross(&b), Vec3::new(-3.0, 6.0, -3.0));
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-15);
        assert_eq!((a + b) - b, a);
        assert_eq!(-a, a * -1.0);
    }

    #[test]
    fn skew_realizes_cross_product() {
        let a = Vec3::new(0.3, -0.7, 1.1);
        let b = Vec3::new(-2.0, 0.5, 0.4);
        let via_skew = a.skew().mul_vec(&b);
        let direct = a.cross(&b);
        assert!((via_skew - direct).norm() < 1e-15);
    }

    #[test]
    fn mat3_products() {
        let r = Quat::exp(&Vec3::new(0.1, 0.2, 0.3)).to_mat();
        let rt_r = r.transpose() * r;
        assert!(rt_r.distance(&Mat3::IDENTITY) < 1e-12);
    }

    #[test]
    fn quat_exp_log_roundtrip() {
        for theta in [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1e-14, 0.0, 0.0),
            Vec3::new(0.3, -0.4, 0.5),
            Vec3::new(0.0, PI * 0.9, 0.0),
        ] {
            let q = Quat::exp(&theta);
            assert!((q.log() - theta).norm() < 1e-9, "theta {theta:?}");
        }
    }

    #[test]
    fn quat_rotation_matches_matrix() {
        let q = Quat::exp(&Vec3::new(0.4, -0.2, 0.7));
        let p = Vec3::new(1.0, -2.0, 0.5);
        let via_quat = q.rotate(&p);
        let via_mat = q.to_mat().mul_vec(&p);
        assert!((via_quat - via_mat).norm() < 1e-12);
    }

    #[test]
    fn quat_composition() {
        let qx = Quat::exp(&Vec3::new(FRAC_PI_2, 0.0, 0.0));
        let qy = Quat::exp(&Vec3::new(0.0, FRAC_PI_2, 0.0));
        let p = Vec3::new(0.0, 0.0, 1.0);
        // Apply qy first, then qx.
        let composed = qx.mul(&qy).rotate(&p);
        let sequential = qx.rotate(&qy.rotate(&p));
        assert!((composed - sequential).norm() < 1e-12);
    }

    #[test]
    fn quat_inverse_undoes_rotation() {
        let q = Quat::exp(&Vec3::new(0.5, 0.6, -0.3));
        let p = Vec3::new(2.0, 1.0, -0.5);
        assert!((q.inverse().rotate(&q.rotate(&p)) - p).norm() < 1e-12);
        assert!(q.angle_to(&q) < 1e-12);
    }

    #[test]
    fn log_handles_negative_w() {
        let q = Quat::exp(&Vec3::new(0.2, 0.0, 0.0));
        let neg = Quat { w: -q.w, v: -q.v }; // same rotation
        assert!((neg.log() - Vec3::new(0.2, 0.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn pose_transform_roundtrip() {
        let pose = Pose::new(
            Quat::exp(&Vec3::new(0.1, 0.9, -0.4)),
            Vec3::new(5.0, -2.0, 1.0),
        );
        let p = Vec3::new(0.3, 0.7, -1.2);
        let world = pose.transform(&p);
        let back = pose.inverse_transform(&world);
        assert!((back - p).norm() < 1e-12);
        // inverse() agrees with inverse_transform().
        let via_inv = pose.inverse().transform(&world);
        assert!((via_inv - p).norm() < 1e-12);
    }

    #[test]
    fn pose_compose_associates() {
        let a = Pose::new(
            Quat::exp(&Vec3::new(0.1, 0.0, 0.2)),
            Vec3::new(1.0, 0.0, 0.0),
        );
        let b = Pose::new(
            Quat::exp(&Vec3::new(0.0, 0.3, 0.0)),
            Vec3::new(0.0, 2.0, 0.0),
        );
        let c = Pose::new(
            Quat::exp(&Vec3::new(0.2, 0.1, 0.0)),
            Vec3::new(0.0, 0.0, 3.0),
        );
        let p = Vec3::new(0.5, 0.5, 0.5);
        let lhs = a.compose(&b).compose(&c).transform(&p);
        let rhs = a.compose(&b.compose(&c)).transform(&p);
        assert!((lhs - rhs).norm() < 1e-12);
    }

    #[test]
    fn boxplus_zero_is_identity() {
        let pose = Pose::new(
            Quat::exp(&Vec3::new(0.3, 0.2, 0.1)),
            Vec3::new(1.0, 2.0, 3.0),
        );
        let same = pose.boxplus(&Vec3::ZERO, &Vec3::ZERO);
        assert!(pose.rot.angle_to(&same.rot) < 1e-12);
        assert!((pose.trans - same.trans).norm() < 1e-12);
    }

    #[test]
    fn boxplus_small_step_moves_linearly() {
        let pose = Pose::IDENTITY;
        let step = Vec3::new(1e-6, 0.0, 0.0);
        let moved = pose.boxplus(&step, &Vec3::ZERO);
        assert!((moved.rot.log() - step).norm() < 1e-12);
    }
}
