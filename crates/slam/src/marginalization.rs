//! Marginalization: turning the oldest keyframe and its landmarks into a
//! prior for the next window (paper Sec. 3.1, "Marginalization").
//!
//! The procedure follows the paper's three steps: (1) linearize all factors
//! touching the marginalized states, (2) form the information matrix
//! `H = JᵀJ` and vector `b = Jᵀe`, (3) block `H` and apply the Schur
//! complement (the **M-type Schur**: the marginalized block mixes landmark
//! and pose states, so — unlike the NLS solve — its leading sub-block is only
//! *partially* diagonal; the M-DFG builder picks the blocking with the
//! diagonal `M₁₁`, which is exactly the landmark sub-block here).

use crate::factors::{evaluate_imu, evaluate_visual, FactorWeights};
use crate::prior::Prior;
use crate::solver::SolveError;
use crate::window::{SlidingWindow, STATE_DIM};
use archytas_math::{BlockSpec, Blocked2x2, Cholesky, DMat, DVec};
use archytas_par::counters::{self, Phase};

/// Outcome of marginalizing the oldest keyframe out of a window.
#[derive(Debug, Clone)]
pub struct MarginalizationResult {
    /// The shrunk window (oldest keyframe and its landmarks removed, indices
    /// re-based).
    pub window: SlidingWindow,
    /// The new prior over the remaining keyframes.
    pub prior: Prior,
    /// Number of landmarks marginalized (`am` in the paper's Eq. 10/15).
    pub marginalized_landmarks: usize,
}

/// Marginalizes keyframe 0 (and every landmark anchored there) out of
/// `window`, producing the shrunk window and the prior `(Hp, rp)` for the
/// next optimization.
///
/// `prior` is the previous window's prior, which itself touches the
/// marginalized keyframe and is therefore folded into the new one.
///
/// # Panics
///
/// Panics when the window has fewer than two keyframes, or when the
/// marginalized block is numerically unusable (see
/// [`try_marginalize_oldest`] for the fallible form).
pub fn marginalize_oldest(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
) -> MarginalizationResult {
    try_marginalize_oldest(window, weights, prior)
        .expect("marginalize_oldest: marginalized block not factorizable")
}

/// Fallible form of [`marginalize_oldest`]: a marginalized block that stays
/// non-SPD (or non-finite) through regularization comes back as an `Err`
/// instead of panicking, letting the pipeline drop the prior and continue
/// (see [`drop_oldest`] for the prior-free window shrink).
///
/// # Panics
///
/// Still panics when the window has fewer than two keyframes — a programmer
/// error, not a data condition.
pub fn try_marginalize_oldest(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
) -> Result<MarginalizationResult, SolveError> {
    counters::time(Phase::Marginalization, || {
        try_marginalize_oldest_impl(window, weights, prior)
    })
}

fn try_marginalize_oldest_impl(
    window: &SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
) -> Result<MarginalizationResult, SolveError> {
    let b = window.num_keyframes();
    assert!(b >= 2, "marginalize_oldest: need at least two keyframes");

    // Landmarks anchored at keyframe 0 are marginalized with it.
    let marg_landmarks: Vec<usize> = (0..window.landmarks.len())
        .filter(|&l| window.landmarks[l].anchor == 0)
        .collect();
    let am = marg_landmarks.len();
    let lm_slot: std::collections::HashMap<usize, usize> = marg_landmarks
        .iter()
        .enumerate()
        .map(|(slot, &l)| (l, slot))
        .collect();

    // Local ordering: [marginalized landmarks (am) | kf0 (15) | kept keyframes ((b−1)·15)].
    let marg_dim = am + STATE_DIM;
    let dim = marg_dim + (b - 1) * STATE_DIM;
    let kf_off = |k: usize| -> usize {
        if k == 0 {
            am
        } else {
            marg_dim + (k - 1) * STATE_DIM
        }
    };

    let mut h = DMat::zeros(dim, dim);
    let mut g = DVec::zeros(dim);

    // --- visual factors of marginalized landmarks ---
    let wv2 = weights.visual * weights.visual;
    for obs in &window.observations {
        let Some(&slot) = lm_slot.get(&obs.landmark) else {
            continue;
        };
        let lm = &window.landmarks[obs.landmark];
        if obs.keyframe == lm.anchor {
            continue;
        }
        let Some(ev) = evaluate_visual(
            &window.keyframes[lm.anchor].pose,
            &window.keyframes[obs.keyframe].pose,
            &lm.bearing,
            lm.inv_depth,
            obs.uv,
        ) else {
            continue;
        };
        // Same robust gate as the assembler (`None` reuses `wv2` bit for
        // bit), so an outlier's information is bounded in the prior too.
        let w2 = match weights.huber_delta {
            None => wv2,
            Some(_) => wv2 * weights.visual_robust_scale(ev.residual[0], ev.residual[1]),
        };
        let col_rho = slot;
        let col_anchor = kf_off(0);
        let col_obs = kf_off(obs.keyframe);
        for r in 0..2 {
            let e = ev.residual[r];
            // Fixed-size gather (1 rho + interleaved anchor/observer pose
            // columns, preserving the historical accumulation order) — no
            // per-row heap allocation.
            let mut cols = [0usize; 13];
            let mut vals = [0f64; 13];
            cols[0] = col_rho;
            vals[0] = ev.j_rho[r];
            for c in 0..6 {
                cols[1 + 2 * c] = col_anchor + c;
                vals[1 + 2 * c] = ev.j_anchor[r][c];
                cols[2 + 2 * c] = col_obs + c;
                vals[2 + 2 * c] = ev.j_obs[r][c];
            }
            accumulate(&mut h, &mut g, &cols, &vals, e, w2);
        }
    }

    // --- the IMU factor attached to keyframe 0 ---
    for cons in window.imu.iter().filter(|c| c.first == 0) {
        let ev = evaluate_imu(
            &window.keyframes[0],
            &window.keyframes[1],
            &cons.preintegration,
        );
        let off_i = kf_off(0);
        let off_j = kf_off(1);
        for r in 0..15 {
            let w = weights.imu_row(r);
            let e = ev.residual[r];
            let mut cols = [0usize; 30];
            let mut vals = [0f64; 30];
            for c in 0..15 {
                cols[2 * c] = off_i + c;
                vals[2 * c] = ev.j_i[r][c];
                cols[2 * c + 1] = off_j + c;
                vals[2 * c + 1] = ev.j_j[r][c];
            }
            accumulate(&mut h, &mut g, &cols, &vals, e, w * w);
        }
    }

    // --- previous prior (touches kf0 and the kept keyframes) ---
    if let Some(p) = prior {
        // The prior's own ordering is [kf0, kf1, ...]; shift past the
        // landmark slots of the local marginalization ordering.
        let hp = p.information();
        let jt_r = p.gradient(window);
        let pdim = p.dim();
        for i in 0..pdim {
            let gi = map_prior_index(i, am);
            g[gi] -= jt_r[i];
            for j in 0..pdim {
                let gj = map_prior_index(j, am);
                h.add_at(gi, gj, hp.get(i, j));
            }
        }
    } else {
        // Gauge prior on kf0, matching `build_normal_equations`.
        let off = kf_off(0);
        for c in 0..STATE_DIM {
            let w2 = if c < 6 { 1e8 } else { 1e2 };
            h.add_at(off + c, off + c, w2);
        }
    }

    // --- Schur complement: keep the trailing (b−1)·15 block ---
    // The `expect`s below are shape invariants of the local ordering built
    // above (programmer errors); the data-dependent failures are the
    // factorizations, which return `Err`.
    let spec = BlockSpec::new(marg_dim, dim).expect("valid split");
    let blocked = Blocked2x2::partition(&h, spec).expect("partition");
    let (bx, by) = archytas_math::split_vector(&g, spec).expect("split");
    // Regularize the marginalized block before inversion (it can be gauge
    // deficient when landmarks have few observations). `M` is factored once
    // and the inverse shared between the Schur complement and the reduced
    // right-hand side — historically `dense_schur_complement` and the `rp`
    // computation each ran their own O(n³) factorization of the same matrix.
    let m = blocked.u.add_diagonal(1e-9);
    let m_inv = Cholesky::factor(&m)?.inverse();
    let lm_inv = blocked
        .w
        .try_mul(&m_inv)
        .expect("marginal block shapes agree");
    let prod = lm_inv
        .try_mul(&blocked.w.transpose())
        .expect("marginal block shapes agree");
    let hp = &blocked.v - &prod;
    let rp = &by - &blocked.w.mat_vec(&m_inv.mat_vec(&bx));

    let lin_states = window.keyframes[1..].to_vec();
    let new_prior = Prior::try_from_information(&hp, &rp, lin_states, 1e-9)?;

    // --- shrink the window ---
    let window_out = shrink_window(window, &marg_landmarks);

    Ok(MarginalizationResult {
        window: window_out,
        prior: new_prior,
        marginalized_landmarks: am,
    })
}

/// Shrinks the window without computing a prior: keyframe 0 and its anchored
/// landmarks are simply discarded.
///
/// This is the degradation fallback when [`try_marginalize_oldest`] fails —
/// the departed keyframe's information is lost (the next window re-fixes the
/// gauge instead), but the estimator keeps running rather than carrying a
/// poisoned prior into every subsequent window.
///
/// # Panics
///
/// Panics when the window has fewer than two keyframes.
pub fn drop_oldest(window: &SlidingWindow) -> (SlidingWindow, usize) {
    assert!(
        window.num_keyframes() >= 2,
        "drop_oldest: need at least two keyframes"
    );
    let marg_landmarks: Vec<usize> = (0..window.landmarks.len())
        .filter(|&l| window.landmarks[l].anchor == 0)
        .collect();
    let am = marg_landmarks.len();
    (shrink_window(window, &marg_landmarks), am)
}

/// Maps an index of the prior's ordering (`[kf0 | kf1..]`) into the local
/// marginalization ordering (`[lms | kf0 | kf1..]`).
fn map_prior_index(i: usize, am: usize) -> usize {
    am + i
}

fn accumulate(h: &mut DMat, g: &mut DVec, cols: &[usize], vals: &[f64], e: f64, w2: f64) {
    for (k, (&ci, &vi)) in cols.iter().zip(vals).enumerate() {
        if vi == 0.0 {
            continue;
        }
        g[ci] -= w2 * vi * e;
        for (&cj, &vj) in cols[k..].iter().zip(&vals[k..]) {
            if vj == 0.0 {
                continue;
            }
            let contrib = w2 * vi * vj;
            h.add_at(ci, cj, contrib);
            if ci != cj {
                h.add_at(cj, ci, contrib);
            }
        }
    }
}

/// Removes keyframe 0 and the given landmarks, re-basing all indices.
fn shrink_window(window: &SlidingWindow, marg_landmarks: &[usize]) -> SlidingWindow {
    let is_marged: std::collections::HashSet<usize> = marg_landmarks.iter().copied().collect();
    let mut new_index = vec![usize::MAX; window.landmarks.len()];
    let mut landmarks = Vec::new();
    for (l, lm) in window.landmarks.iter().enumerate() {
        if is_marged.contains(&l) {
            continue;
        }
        let mut lm = *lm;
        lm.anchor -= 1;
        new_index[l] = landmarks.len();
        landmarks.push(lm);
    }
    let observations = window
        .observations
        .iter()
        .filter(|o| !is_marged.contains(&o.landmark) && o.keyframe != 0)
        .map(|o| {
            let mut o = *o;
            o.landmark = new_index[o.landmark];
            o.keyframe -= 1;
            o
        })
        .collect();
    let imu = window
        .imu
        .iter()
        .filter(|c| c.first != 0)
        .map(|c| {
            let mut c = c.clone();
            c.first -= 1;
            c
        })
        .collect();
    SlidingWindow {
        keyframes: window.keyframes[1..].to_vec(),
        landmarks,
        observations,
        imu,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Pose, Quat, Vec3};
    use crate::imu::{ImuSample, Preintegration};
    use crate::window::{ImuConstraint, KeyframeState, Landmark, Observation};

    /// Three keyframes moving along +x, landmarks anchored at kf0 and kf1.
    fn build_window() -> SlidingWindow {
        let mut w = SlidingWindow::new();
        for i in 0..3 {
            w.keyframes.push(KeyframeState::at_pose(
                Pose::new(Quat::IDENTITY, Vec3::new(i as f64 * 0.4, 0.0, 0.0)),
                i as f64 * 0.1,
            ));
        }
        // Two landmarks anchored at kf0, one at kf1; all observed downstream.
        let specs = [
            (0usize, 0.1, 0.05, 5.0),
            (0, -0.2, 0.1, 7.0),
            (1, 0.15, -0.1, 6.0),
        ];
        for (idx, (anchor, x, y, d)) in specs.iter().enumerate() {
            let bearing = Vec3::new(*x, *y, 1.0);
            let p_w = w.keyframes[*anchor].pose.transform(&(bearing * *d));
            w.landmarks.push(Landmark {
                id: idx as u64,
                anchor: *anchor,
                bearing,
                inv_depth: 1.0 / d,
            });
            for kf in (*anchor + 1)..3 {
                let p_c = w.keyframes[kf].pose.inverse_transform(&p_w);
                w.observations.push(Observation {
                    landmark: idx,
                    keyframe: kf,
                    uv: [p_c.x() / p_c.z(), p_c.y() / p_c.z()],
                });
            }
        }
        // IMU constraints consistent with uniform motion (v = 4 m/s along x).
        for i in 0..w.keyframes.len() {
            w.keyframes[i].velocity = Vec3::new(4.0, 0.0, 0.0);
        }
        for i in 0..2 {
            let samples: Vec<ImuSample> = (0..20)
                .map(|_| ImuSample {
                    gyro: Vec3::ZERO,
                    accel: -crate::imu::GRAVITY, // at rest rotationally, constant velocity
                    dt: 0.005,
                })
                .collect();
            w.imu.push(ImuConstraint {
                first: i,
                preintegration: Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO),
            });
        }
        w
    }

    #[test]
    fn window_shrinks_consistently() {
        let w = build_window();
        let result = marginalize_oldest(&w, &FactorWeights::default(), None);
        assert_eq!(result.marginalized_landmarks, 2);
        let nw = &result.window;
        assert_eq!(nw.num_keyframes(), 2);
        assert_eq!(nw.num_landmarks(), 1);
        assert!(nw.validate(), "shrunk window has consistent indices");
        // The surviving landmark was anchored at kf1, now kf0.
        assert_eq!(nw.landmarks[0].anchor, 0);
        assert!(nw.imu.iter().all(|c| c.first == 0));
    }

    #[test]
    fn prior_covers_remaining_keyframes() {
        let w = build_window();
        let result = marginalize_oldest(&w, &FactorWeights::default(), None);
        assert_eq!(result.prior.num_keyframes(), 2);
        assert_eq!(result.prior.dim(), 30);
    }

    #[test]
    fn prior_information_is_psd_and_nontrivial() {
        let w = build_window();
        let result = marginalize_oldest(&w, &FactorWeights::default(), None);
        let hp = result.prior.information();
        assert!(hp.is_symmetric(1e-6));
        // PSD check via Cholesky of Hp + εI.
        assert!(hp.add_diagonal(1e-6).cholesky().is_ok());
        assert!(hp.max_abs() > 1.0, "prior carries real information");
    }

    /// Marginalization must preserve the minimizer: for a window already at
    /// the ground truth (zero residuals), the prior's gradient at the
    /// remaining states must be (numerically) zero.
    #[test]
    fn prior_gradient_zero_at_consistent_states() {
        let w = build_window();
        let result = marginalize_oldest(&w, &FactorWeights::default(), None);
        let g = result.prior.gradient(&result.window);
        assert!(
            g.max_abs() < 1e-3,
            "gradient at the optimum should vanish, got {}",
            g.max_abs()
        );
    }

    #[test]
    fn corrupted_window_errors_instead_of_panicking() {
        let mut w = build_window();
        for obs in &mut w.observations {
            obs.uv = [f64::NAN, f64::NAN];
        }
        let r = try_marginalize_oldest(&w, &FactorWeights::default(), None);
        assert!(r.is_err(), "NaN measurements must surface as SolveError");
    }

    #[test]
    fn drop_oldest_matches_marginalize_shrink() {
        let w = build_window();
        let full = marginalize_oldest(&w, &FactorWeights::default(), None);
        let (dropped, am) = drop_oldest(&w);
        assert_eq!(am, full.marginalized_landmarks);
        assert_eq!(dropped.num_keyframes(), full.window.num_keyframes());
        assert_eq!(dropped.num_landmarks(), full.window.num_landmarks());
        assert!(dropped.validate());
    }

    #[test]
    fn chained_marginalization_folds_prior() {
        let w = build_window();
        let weights = FactorWeights::default();
        let r1 = marginalize_oldest(&w, &weights, None);
        // Second marginalization consumes the first prior.
        let r2 = marginalize_oldest(&r1.window, &weights, Some(&r1.prior));
        assert_eq!(r2.window.num_keyframes(), 1);
        assert_eq!(r2.prior.num_keyframes(), 1);
        let hp = r2.prior.information();
        assert!(hp.max_abs() > 1.0);
    }
}
