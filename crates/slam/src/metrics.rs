//! Localization accuracy metrics: RMSE, ATE and per-window relative error.
//!
//! These produce the y-axes of the paper's Fig. 11 (relative error vs
//! feature count) and Fig. 12 (RMSE vs NLS iteration count), and back the
//! dynamic-optimization accuracy claims of Sec. 7.6.

use crate::geometry::Pose;

/// Root-mean-square translational error between two equally-long pose
/// sequences.
///
/// # Panics
///
/// Panics when the sequences differ in length or are empty.
pub fn rmse_translation(estimate: &[Pose], ground_truth: &[Pose]) -> f64 {
    assert_eq!(
        estimate.len(),
        ground_truth.len(),
        "rmse: sequence length mismatch"
    );
    assert!(!estimate.is_empty(), "rmse: empty sequences");
    let sum_sq: f64 = estimate
        .iter()
        .zip(ground_truth)
        .map(|(e, g)| {
            let d = e.translation_distance(g);
            d * d
        })
        .sum();
    (sum_sq / estimate.len() as f64).sqrt()
}

/// Per-window relative error: the estimated displacement between two poses
/// compared to the ground-truth displacement, normalized by the latter
/// (Fig. 11's left y-axis).
///
/// Returns 0 when the ground truth barely moved (displacement < 1 mm).
pub fn relative_error(est_prev: &Pose, est_cur: &Pose, gt_prev: &Pose, gt_cur: &Pose) -> f64 {
    let est_disp = est_cur.trans - est_prev.trans;
    let gt_disp = gt_cur.trans - gt_prev.trans;
    let gt_norm = gt_disp.norm();
    if gt_norm < 1e-3 {
        return 0.0;
    }
    (est_disp - gt_disp).norm() / gt_norm
}

/// Streaming accumulator of trajectory metrics over a run.
#[derive(Debug, Clone, Default)]
pub struct TrajectoryMetrics {
    sq_err_sum: f64,
    rel_err_sum: f64,
    max_translation_err: f64,
    count: usize,
}

impl TrajectoryMetrics {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one estimated/ground-truth pose pair plus its per-window
    /// relative error.
    pub fn record(&mut self, est: &Pose, gt: &Pose, relative_err: f64) {
        let d = est.translation_distance(gt);
        self.sq_err_sum += d * d;
        self.rel_err_sum += relative_err;
        if d > self.max_translation_err {
            self.max_translation_err = d;
        }
        self.count += 1;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Root-mean-square translational error so far (0 when empty).
    pub fn rmse(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sq_err_sum / self.count as f64).sqrt()
        }
    }

    /// Mean per-window relative error so far (0 when empty).
    pub fn mean_relative_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.rel_err_sum / self.count as f64
        }
    }

    /// Largest single translational error seen.
    pub fn max_error(&self) -> f64 {
        self.max_translation_err
    }
}

/// Mean and (population) standard deviation of a sample — used for the
/// error bars of Fig. 16.
pub fn mean_stdev(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Quat, Vec3};

    fn pose_at(x: f64) -> Pose {
        Pose::new(Quat::IDENTITY, Vec3::new(x, 0.0, 0.0))
    }

    #[test]
    fn rmse_of_identical_sequences_is_zero() {
        let seq = vec![pose_at(0.0), pose_at(1.0)];
        assert_eq!(rmse_translation(&seq, &seq), 0.0);
    }

    #[test]
    fn rmse_matches_manual() {
        let est = vec![pose_at(0.0), pose_at(1.0)];
        let gt = vec![pose_at(0.0), pose_at(2.0)];
        // errors: 0 and 1 → rmse = sqrt(0.5)
        assert!((rmse_translation(&est, &gt) - 0.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn relative_error_scales_with_drift() {
        let e = relative_error(&pose_at(0.0), &pose_at(1.1), &pose_at(0.0), &pose_at(1.0));
        assert!((e - 0.1).abs() < 1e-9);
        // Stationary ground truth → defined as zero.
        let e0 = relative_error(&pose_at(0.0), &pose_at(0.5), &pose_at(0.0), &pose_at(0.0));
        assert_eq!(e0, 0.0);
    }

    #[test]
    fn accumulator_statistics() {
        let mut m = TrajectoryMetrics::new();
        assert!(m.is_empty());
        m.record(&pose_at(1.0), &pose_at(0.0), 0.2);
        m.record(&pose_at(0.0), &pose_at(0.0), 0.4);
        assert_eq!(m.len(), 2);
        assert!((m.rmse() - (0.5f64).sqrt()).abs() < 1e-12);
        assert!((m.mean_relative_error() - 0.3).abs() < 1e-12);
        assert_eq!(m.max_error(), 1.0);
    }

    #[test]
    fn mean_stdev_basics() {
        let (m, s) = mean_stdev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_stdev(&[]), (0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rmse_checks_lengths() {
        let _ = rmse_translation(&[pose_at(0.0)], &[]);
    }
}
