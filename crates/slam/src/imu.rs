//! IMU measurements and preintegration between consecutive keyframes.
//!
//! The MAP formulation fuses camera and IMU (paper Sec. 2.2). Raw IMU samples
//! arriving between two keyframes are *preintegrated* into a single relative
//! motion constraint `(Δq, Δp, Δv)` plus first-order bias-correction
//! Jacobians, so the sliding-window problem only carries one IMU factor per
//! keyframe pair regardless of the IMU rate.

use crate::geometry::{Mat3, Quat, Vec3};

/// Standard gravity in the world frame (z-up).
pub const GRAVITY: Vec3 = Vec3([0.0, 0.0, -9.81]);

/// One IMU sample: body-frame angular velocity and specific force over `dt`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImuSample {
    /// Gyroscope reading (rad/s).
    pub gyro: Vec3,
    /// Accelerometer reading (m/s², includes gravity reaction).
    pub accel: Vec3,
    /// Integration interval to the next sample (s).
    pub dt: f64,
}

/// Preintegrated IMU motion between two keyframes, linearized at the gyro and
/// accelerometer biases `(bg0, ba0)`.
#[derive(Debug, Clone)]
pub struct Preintegration {
    /// Relative rotation accumulated over the interval.
    pub delta_q: Quat,
    /// Relative position (body frame of the first keyframe).
    pub delta_p: Vec3,
    /// Relative velocity (body frame of the first keyframe).
    pub delta_v: Vec3,
    /// Total integration time (s).
    pub dt: f64,
    /// Gyro bias at linearization.
    pub bg0: Vec3,
    /// Accel bias at linearization.
    pub ba0: Vec3,
    /// ∂Δq/∂bg (rotation-vector sense).
    pub j_q_bg: Mat3,
    /// ∂Δp/∂bg.
    pub j_p_bg: Mat3,
    /// ∂Δp/∂ba.
    pub j_p_ba: Mat3,
    /// ∂Δv/∂bg.
    pub j_v_bg: Mat3,
    /// ∂Δv/∂ba.
    pub j_v_ba: Mat3,
    /// Number of integrated samples.
    pub samples: usize,
}

impl Preintegration {
    /// Integrates a sequence of IMU samples at the given bias linearization
    /// point.
    pub fn integrate(samples: &[ImuSample], bg0: Vec3, ba0: Vec3) -> Self {
        let mut pre = Self {
            delta_q: Quat::IDENTITY,
            delta_p: Vec3::ZERO,
            delta_v: Vec3::ZERO,
            dt: 0.0,
            bg0,
            ba0,
            j_q_bg: Mat3::ZERO,
            j_p_bg: Mat3::ZERO,
            j_p_ba: Mat3::ZERO,
            j_v_bg: Mat3::ZERO,
            j_v_ba: Mat3::ZERO,
            samples: samples.len(),
        };
        for s in samples {
            pre.step(s);
        }
        pre
    }

    /// Single Euler integration step with first-order bias Jacobian
    /// propagation (Forster-style, with the right Jacobian approximated by
    /// identity — adequate at keyframe-scale intervals).
    fn step(&mut self, s: &ImuSample) {
        let dt = s.dt;
        let w = s.gyro - self.bg0;
        let a = s.accel - self.ba0;
        let r_k = self.delta_q.to_mat();
        let ra = r_k.mul_vec(&a);

        // Bias Jacobians first (they use the state before this step).
        // d(Δp)/db += d(Δv)/db·dt  (position integrates velocity)
        self.j_p_bg = self.j_p_bg + self.j_v_bg.scale(dt);
        self.j_p_ba = self.j_p_ba + self.j_v_ba.scale(dt);
        // d(Δv)/dbg -= ΔR·[a]×·J_q_bg·dt ;  d(Δv)/dba -= ΔR·dt
        let ra_skew = r_k * a.skew();
        self.j_v_bg = self.j_v_bg - (ra_skew * self.j_q_bg).scale(dt);
        self.j_v_ba = self.j_v_ba - r_k.scale(dt);
        // d(Δq)/dbg ← Exp(w·dt)ᵀ·J_q_bg − I·dt
        let dq_step = Quat::exp(&(w * dt));
        self.j_q_bg = dq_step.to_mat().transpose() * self.j_q_bg - Mat3::IDENTITY.scale(dt);

        // State integration.
        self.delta_p = self.delta_p + self.delta_v * dt + ra * (0.5 * dt * dt);
        self.delta_v = self.delta_v + ra * dt;
        self.delta_q = self.delta_q.mul(&dq_step).normalized();
        self.dt += dt;
    }

    /// Bias-corrected preintegrated quantities at biases `(bg, ba)` using the
    /// first-order expansion around `(bg0, ba0)`.
    pub fn corrected(&self, bg: &Vec3, ba: &Vec3) -> (Quat, Vec3, Vec3) {
        let dbg = *bg - self.bg0;
        let dba = *ba - self.ba0;
        let dq = self
            .delta_q
            .mul(&Quat::exp(&self.j_q_bg.mul_vec(&dbg)))
            .normalized();
        let dp = self.delta_p + self.j_p_bg.mul_vec(&dbg) + self.j_p_ba.mul_vec(&dba);
        let dv = self.delta_v + self.j_v_bg.mul_vec(&dbg) + self.j_v_ba.mul_vec(&dba);
        (dq, dp, dv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn constant_motion(n: usize, gyro: Vec3, accel: Vec3, dt: f64) -> Vec<ImuSample> {
        (0..n).map(|_| ImuSample { gyro, accel, dt }).collect()
    }

    #[test]
    fn stationary_integration_is_identity() {
        // A body at rest measures the gravity reaction −g and no rotation.
        let samples = constant_motion(100, Vec3::ZERO, -GRAVITY, 0.005);
        let pre = Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO);
        assert!((pre.dt - 0.5).abs() < 1e-12);
        assert!(pre.delta_q.angle_to(&Quat::IDENTITY) < 1e-12);
        // Δv = ∫a dt = −g·t in the body frame (gravity is subtracted in the
        // residual, not in the preintegration).
        assert!((pre.delta_v - (-GRAVITY) * 0.5).norm() < 1e-9);
    }

    #[test]
    fn pure_rotation_accumulates_angle() {
        let rate = Vec3::new(0.0, 0.0, 1.0); // 1 rad/s yaw
        let samples = constant_motion(1000, rate, Vec3::ZERO, 0.001);
        let pre = Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO);
        let angle = pre.delta_q.log();
        assert!((angle - Vec3::new(0.0, 0.0, 1.0)).norm() < 1e-6);
    }

    #[test]
    fn constant_acceleration_kinematics() {
        // No rotation, constant body acceleration a: Δp = ½at², Δv = at.
        let a = Vec3::new(2.0, 0.0, 0.0);
        let samples = constant_motion(1000, Vec3::ZERO, a, 0.001);
        let pre = Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO);
        assert!((pre.delta_v - a * 1.0).norm() < 1e-9);
        assert!((pre.delta_p - a * 0.5).norm() < 2e-3); // Euler discretization error
    }

    #[test]
    fn gyro_bias_is_subtracted() {
        let bias = Vec3::new(0.0, 0.0, 0.3);
        let samples = constant_motion(100, bias, Vec3::ZERO, 0.01);
        let pre = Preintegration::integrate(&samples, bias, Vec3::ZERO);
        assert!(pre.delta_q.angle_to(&Quat::IDENTITY) < 1e-12);
    }

    #[test]
    fn bias_correction_first_order_accuracy() {
        // Integrating with bias b then correcting to bias b+δ should match a
        // re-integration at bias b+δ to first order in δ.
        let gyro = Vec3::new(0.2, -0.1, 0.3);
        let accel = Vec3::new(1.0, 0.5, -9.0);
        let samples = constant_motion(200, gyro, accel, 0.005);
        let pre = Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO);

        let dbg = Vec3::new(0.01, -0.005, 0.008);
        let dba = Vec3::new(0.02, 0.01, -0.015);
        let (cq, cp, cv) = pre.corrected(&dbg, &dba);
        let re = Preintegration::integrate(&samples, dbg, dba);

        assert!(cq.angle_to(&re.delta_q) < 5e-4, "rotation correction");
        assert!((cp - re.delta_p).norm() < 5e-3, "position correction");
        assert!((cv - re.delta_v).norm() < 5e-3, "velocity correction");
    }

    #[test]
    fn corrected_at_linearization_point_is_exact() {
        let samples = constant_motion(50, Vec3::new(0.1, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0), 0.01);
        let pre = Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO);
        let (cq, cp, cv) = pre.corrected(&Vec3::ZERO, &Vec3::ZERO);
        assert!(cq.angle_to(&pre.delta_q) < 1e-12);
        assert!((cp - pre.delta_p).norm() < 1e-12);
        assert!((cv - pre.delta_v).norm() < 1e-12);
    }
}
