//! Levenberg–Marquardt nonlinear least-squares solver (paper Sec. 3.1, the
//! "NLS Solver" phase).
//!
//! Each iteration performs the paper's three steps: linearize (Jacobians),
//! prepare `A·δp = b`, and solve the linear system — the solve going through
//! the D-type Schur elimination of `archytas_math::SchurSystem`, exactly the
//! structure the generated hardware implements.

use crate::factors::FactorWeights;
use crate::prior::Prior;
use crate::problem::{
    apply_increment, build_block_normal_equations, build_normal_equations, evaluate_cost,
};
use crate::window::SlidingWindow;
use archytas_math::{
    BlockSparseSystem, BlockSpec, Cholesky, DVec, MathError, SchurScratch, SchurSystem,
};
use archytas_par::counters::{self, Phase};
use archytas_par::Pool;
use std::fmt;

/// Diagonal floor of the Marquardt damping `A + λ·max(diag(A), floor)`.
const DAMP_FLOOR: f64 = 1e-9;

/// Configuration of the LM solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LmConfig {
    /// Maximum number of outer iterations (the paper's `Iter` knob; the
    /// run-time system tunes this between 1 and 6).
    pub max_iterations: usize,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Multiplier applied to λ after a rejected step.
    pub lambda_up: f64,
    /// Multiplier applied to λ after an accepted step.
    pub lambda_down: f64,
    /// Relative cost-decrease threshold for convergence.
    pub cost_tolerance: f64,
    /// Maximum consecutive rejected steps before giving up an iteration.
    pub max_retries: usize,
}

impl Default for LmConfig {
    fn default() -> Self {
        Self {
            max_iterations: 6,
            initial_lambda: 1e-4,
            lambda_up: 10.0,
            lambda_down: 0.5,
            cost_tolerance: 1e-6,
            max_retries: 5,
        }
    }
}

impl LmConfig {
    /// Config with a fixed iteration budget — the knob the Archytas run-time
    /// system turns (Sec. 6.2).
    pub fn with_iterations(iterations: usize) -> Self {
        Self {
            max_iterations: iterations,
            ..Self::default()
        }
    }
}

/// Typed failure of the solve/marginalization path.
///
/// Data-dependent numerical failures (a non-SPD Hessian, a diagonal entry
/// driven to zero, non-finite residuals) surface as values of this type so
/// callers can degrade gracefully instead of unwinding; see
/// [`crate::try_marginalize_oldest`] and
/// [`Prior::try_from_information`](crate::Prior::try_from_information).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolveError {
    /// The underlying linear algebra failed — typically
    /// [`MathError::NotPositiveDefinite`] from a Cholesky pivot.
    Linear(MathError),
    /// A cost, residual or increment evaluated to a non-finite value.
    NonFinite,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Linear(e) => write!(f, "linear solve failed: {e}"),
            SolveError::NonFinite => write!(f, "non-finite value in the objective"),
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::Linear(e) => Some(e),
            SolveError::NonFinite => None,
        }
    }
}

impl From<MathError> for SolveError {
    fn from(e: MathError) -> Self {
        SolveError::Linear(e)
    }
}

/// Why a solve ended [`Degraded`](SolveOutcome::Degraded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradeReason {
    /// Every damping retry failed to factorize: the normal equations stayed
    /// non-positive-definite through the full λ escalation.
    LinearSolveFailed,
    /// The objective (or the solved increment) went non-finite — corrupted
    /// measurements reached the residuals.
    NonFiniteValues,
}

/// How one sliding-window optimization ended, for callers that react to
/// solver health (the pipeline's degradation ladder, the runtime watchdog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolveOutcome {
    /// The relative cost decrease fell below tolerance (or the problem was
    /// already at a minimum).
    #[default]
    Converged,
    /// All budgeted iterations ran while the cost was still improving.
    BudgetExhausted,
    /// The solve could not make progress for a numerical reason; the window
    /// estimate is whatever the last accepted step left behind.
    Degraded {
        /// The numerical condition that stopped progress.
        reason: DegradeReason,
    },
}

impl SolveOutcome {
    /// `true` for [`SolveOutcome::Degraded`].
    pub fn is_degraded(&self) -> bool {
        matches!(self, SolveOutcome::Degraded { .. })
    }
}

/// Outcome of one sliding-window optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveReport {
    /// Iterations actually executed (≤ `max_iterations`).
    pub iterations: usize,
    /// Cost before the first iteration.
    pub initial_cost: f64,
    /// Cost after the last accepted step.
    pub final_cost: f64,
    /// `true` when the relative cost decrease fell below tolerance.
    pub converged: bool,
    /// Final damping factor.
    pub lambda: f64,
    /// Norm of the last accepted increment.
    pub last_step_norm: f64,
    /// Norms of every accepted increment, in iteration order (empty when no
    /// step was accepted). Run-time policies use the settle point of this
    /// trajectory to learn iteration requirements.
    pub step_norms: Vec<f64>,
    /// How the solve ended — the signal the degradation ladder consumes.
    pub outcome: SolveOutcome,
}

/// Per-iteration numerical observations, folded into a [`SolveOutcome`] when
/// the LM loop exits. Pure bookkeeping: classification never alters the loop's
/// control flow, so reports differ from the historical behavior only by the
/// added field.
#[derive(Default)]
struct OutcomeTracker {
    /// A damping retry's linear solve failed during the final iteration.
    solve_failed: bool,
    /// A non-finite increment or candidate cost appeared during the final
    /// iteration.
    non_finite: bool,
    /// The final iteration accepted a step.
    accepted: bool,
}

impl OutcomeTracker {
    /// Resets at the top of each outer iteration so the flags describe the
    /// iteration the loop actually exited from.
    fn begin_iteration(&mut self) {
        *self = Self::default();
    }

    fn classify(&self, report: &SolveReport, ran_iterations: bool) -> SolveOutcome {
        if !ran_iterations {
            // Zero-budget call: nothing attempted, nothing degraded.
            return SolveOutcome::Converged;
        }
        if !report.final_cost.is_finite() {
            return SolveOutcome::Degraded {
                reason: DegradeReason::NonFiniteValues,
            };
        }
        if report.converged {
            return SolveOutcome::Converged;
        }
        if self.accepted {
            // Exited by exhausting the budget while still improving.
            return SolveOutcome::BudgetExhausted;
        }
        // Stalled: no step accepted in the final iteration. Numerical causes
        // degrade; a plain stall at finite cost is a (local) minimum.
        if self.non_finite {
            SolveOutcome::Degraded {
                reason: DegradeReason::NonFiniteValues,
            }
        } else if self.solve_failed {
            SolveOutcome::Degraded {
                reason: DegradeReason::LinearSolveFailed,
            }
        } else {
            SolveOutcome::Converged
        }
    }
}

/// A pluggable linear solver for the damped normal equations.
///
/// Arguments are `(A_damped, b, num_landmarks)`; `None` signals a
/// factorization failure (the LM loop responds by raising λ). The default is
/// [`schur_linear_solver`]; the hardware functional model substitutes its
/// single-precision datapath here.
pub type LinearSolver<'a> = &'a dyn Fn(&archytas_math::DMat, &DVec, usize) -> Option<DVec>;

/// Reusable buffers for the block-sparse LM solve path: the block-structured
/// normal equations, the Schur-elimination scratch, the increment vector and
/// the candidate window of the step-acceptance test.
///
/// Allocate once and pass to [`solve_in_workspace`] for every window — all
/// buffers grow to the largest window seen and stay allocated, so steady-state
/// iterations perform no per-iteration (or per-retry) heap allocation for the
/// linear-system side.
#[derive(Debug, Clone)]
pub struct SolverWorkspace {
    sys: BlockSparseSystem<f64>,
    scratch: SchurScratch<f64>,
    delta: DVec,
    candidate: SlidingWindow,
    /// Damped dense normal matrix of the custom-linear-solver path
    /// ([`solve_with_in_workspace`]); unused by the block-sparse path.
    dense_damped: archytas_math::DMat,
}

impl Default for SolverWorkspace {
    fn default() -> Self {
        Self::new()
    }
}

impl SolverWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self {
            sys: BlockSparseSystem::new(),
            scratch: SchurScratch::default(),
            delta: DVec::zeros(0),
            candidate: SlidingWindow::new(),
            dense_damped: archytas_math::DMat::zeros(0, 0),
        }
    }
}

/// Solves the sliding-window MAP problem in place using the default
/// double-precision D-type Schur linear solver.
///
/// Returns a [`SolveReport`]; the window's keyframes and landmarks are left
/// at the optimized estimate.
///
/// This goes through the block-sparse pipeline with a thread-local
/// [`SolverWorkspace`], so repeated calls on one thread reuse the grown
/// buffers instead of re-faulting ~1 MB of fresh pages per solve; callers
/// who want explicit control of the buffers' lifetime should hold a
/// workspace and call [`solve_in_workspace`]. Either way the result is
/// bit-identical to the dense reference path ([`solve_with`] +
/// [`schur_linear_solver`]): every buffer is fully overwritten before use.
pub fn solve(
    window: &mut SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
    config: &LmConfig,
) -> SolveReport {
    thread_local! {
        static WS: std::cell::RefCell<SolverWorkspace> =
            std::cell::RefCell::new(SolverWorkspace::new());
    }
    WS.with(|ws| solve_in_workspace(&mut ws.borrow_mut(), window, weights, prior, config))
}

/// Solves the sliding-window MAP problem through the block-sparse normal
/// equations, reusing `ws` for every buffer.
///
/// The LM loop is the same as [`solve_with`]'s; the differences are purely
/// mechanical: the normal equations are assembled block-sparse (never
/// materializing the dense `A`), damping is applied in place with
/// snapshot-undo instead of cloning the matrix, and the candidate window of
/// the acceptance test is a reused buffer swapped in on accept rather than a
/// fresh clone per retry. Every floating-point operation matches the dense
/// reference, so the report and the optimized window are bit-identical to
/// [`solve`]'s documented behavior for any `ARCHYTAS_THREADS` setting.
pub fn solve_in_workspace(
    ws: &mut SolverWorkspace,
    window: &mut SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
    config: &LmConfig,
) -> SolveReport {
    // Calibrated dispatch: the work floor is this machine's measured
    // fork/join break-even (ARCHYTAS_PAR_MIN_WORK still overrides), so
    // window-sized kernels never fork into a slowdown. Dispatch changes
    // timing only — every kernel is bit-identical serial vs. parallel.
    let pool = Pool::calibrated();
    let mut lambda = config.initial_lambda;
    let mut report = SolveReport {
        iterations: 0,
        initial_cost: f64::NAN,
        final_cost: f64::NAN,
        converged: false,
        lambda,
        last_step_norm: 0.0,
        // One accepted step per iteration at most: sized up front so pushes
        // never reallocate mid-solve.
        step_norms: Vec::with_capacity(config.max_iterations),
        outcome: SolveOutcome::Converged,
    };
    let mut tracker = OutcomeTracker::default();

    for _ in 0..config.max_iterations {
        tracker.begin_iteration();
        let info = counters::time(Phase::Assembly, || {
            build_block_normal_equations(window, weights, prior, &mut ws.sys)
        });
        if report.initial_cost.is_nan() {
            report.initial_cost = info.cost;
        }
        report.final_cost = info.cost;

        let mut accepted = false;
        for _ in 0..=config.max_retries {
            counters::time(Phase::Damp, || ws.sys.damp(lambda, DAMP_FLOOR));
            if ws
                .sys
                .solve_into(&mut ws.scratch, &pool, &mut ws.delta)
                .is_err()
            {
                tracker.solve_failed = true;
                lambda *= config.lambda_up;
                continue;
            }
            if !ws.delta.all_finite() {
                tracker.non_finite = true;
                lambda *= config.lambda_up;
                continue;
            }
            let new_cost = counters::time(Phase::CostEvaluation, || {
                ws.candidate.clone_from(window);
                apply_increment(&mut ws.candidate, &ws.delta);
                evaluate_cost(&ws.candidate, weights, prior)
            });
            if !new_cost.is_finite() {
                tracker.non_finite = true;
            }
            if new_cost.is_finite() && new_cost < info.cost {
                std::mem::swap(window, &mut ws.candidate);
                lambda = (lambda * config.lambda_down).max(1e-12);
                report.last_step_norm = ws.delta.norm();
                report.step_norms.push(report.last_step_norm);
                report.final_cost = new_cost;
                accepted = true;
                break;
            }
            lambda *= config.lambda_up;
        }
        tracker.accepted = accepted;
        report.iterations += 1;
        report.lambda = lambda;
        if !accepted {
            break;
        }
        let decrease = (report.initial_cost - report.final_cost).abs();
        let rel = decrease / report.initial_cost.max(1e-30);
        if report.final_cost <= config.cost_tolerance
            || (report.iterations > 1 && rel < config.cost_tolerance)
        {
            report.converged = true;
            break;
        }
    }
    if report.initial_cost.is_nan() {
        report.initial_cost = 0.0;
        report.final_cost = 0.0;
    }
    report.outcome = tracker.classify(&report, report.iterations > 0);
    report
}

/// Solves the sliding-window MAP problem with a caller-provided linear
/// solver (see [`LinearSolver`]).
///
/// Allocates a transient [`SolverWorkspace`]; callers solving many windows
/// (the VIO pipeline, the fleet serving layer) should hold a workspace and
/// call [`solve_with_in_workspace`] to reuse its buffers.
pub fn solve_with(
    window: &mut SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
    config: &LmConfig,
    linear_solver: LinearSolver<'_>,
) -> SolveReport {
    let mut ws = SolverWorkspace::new();
    solve_with_in_workspace(&mut ws, window, weights, prior, config, linear_solver)
}

/// [`solve_with`] reusing `ws` for the damped normal matrix and the
/// acceptance-test candidate window — the custom-linear-solver twin of
/// [`solve_in_workspace`]. Bit-identical to [`solve_with`]: the buffers are
/// fully overwritten (`clone_from`) before every use, so their previous
/// contents never reach an arithmetic instruction.
pub fn solve_with_in_workspace(
    ws: &mut SolverWorkspace,
    window: &mut SlidingWindow,
    weights: &FactorWeights,
    prior: Option<&Prior>,
    config: &LmConfig,
    linear_solver: LinearSolver<'_>,
) -> SolveReport {
    let mut lambda = config.initial_lambda;
    let mut report = SolveReport {
        iterations: 0,
        initial_cost: f64::NAN,
        final_cost: f64::NAN,
        converged: false,
        lambda,
        last_step_norm: 0.0,
        step_norms: Vec::with_capacity(config.max_iterations),
        outcome: SolveOutcome::Converged,
    };
    let mut tracker = OutcomeTracker::default();
    // Reused across iterations, damping retries and (through `ws`) whole
    // windows: `damped` is copied from `ne.a` once per linearization and
    // only its diagonal is rewritten per retry (in-place damping with
    // undo-by-rewrite, instead of a full-matrix clone per retry);
    // `candidate` is the acceptance-test window buffer.
    let damped = &mut ws.dense_damped;
    let candidate = &mut ws.candidate;

    for _ in 0..config.max_iterations {
        tracker.begin_iteration();
        let ne = build_normal_equations(window, weights, prior);
        if report.initial_cost.is_nan() {
            report.initial_cost = ne.cost;
        }
        report.final_cost = ne.cost;
        damped.clone_from(&ne.a);

        let mut accepted = false;
        for _ in 0..=config.max_retries {
            damp_in_place(damped, &ne.a, lambda);
            let Some(delta) = linear_solver(damped, &ne.b, ne.num_landmarks) else {
                tracker.solve_failed = true;
                lambda *= config.lambda_up;
                continue;
            };
            if !delta.all_finite() {
                tracker.non_finite = true;
                lambda *= config.lambda_up;
                continue;
            }
            candidate.clone_from(window);
            apply_increment(candidate, &delta);
            let new_cost = evaluate_cost(candidate, weights, prior);
            if !new_cost.is_finite() {
                tracker.non_finite = true;
            }
            if new_cost.is_finite() && new_cost < ne.cost {
                std::mem::swap(window, candidate);
                lambda = (lambda * config.lambda_down).max(1e-12);
                report.last_step_norm = delta.norm();
                report.step_norms.push(report.last_step_norm);
                report.final_cost = new_cost;
                accepted = true;
                break;
            }
            lambda *= config.lambda_up;
        }
        tracker.accepted = accepted;
        report.iterations += 1;
        report.lambda = lambda;
        if !accepted {
            break;
        }
        let decrease = (report.initial_cost - report.final_cost).abs();
        let rel = decrease / report.initial_cost.max(1e-30);
        if report.final_cost <= config.cost_tolerance
            || (report.iterations > 1 && rel < config.cost_tolerance)
        {
            report.converged = true;
            break;
        }
    }
    if report.initial_cost.is_nan() {
        report.initial_cost = 0.0;
        report.final_cost = 0.0;
    }
    report.outcome = tracker.classify(&report, report.iterations > 0);
    report
}

/// Marquardt damping `A + λ·diag(A)` (with [`DAMP_FLOOR`]) written onto the
/// diagonal of `out`, whose off-diagonal content already equals `a`'s.
///
/// Rewriting the diagonal from the undamped source each call makes re-damping
/// at a new λ (after a rejected step) its own undo — no full-matrix clone per
/// retry, same bits as the historical clone-based `damp()`.
fn damp_in_place(out: &mut archytas_math::DMat, a: &archytas_math::DMat, lambda: f64) {
    for i in 0..a.rows() {
        let d = a.get(i, i);
        out.set(i, i, d + lambda * d.max(DAMP_FLOOR));
    }
}

/// The default linear solver: D-type Schur elimination when landmarks are
/// present, dense Cholesky otherwise. Returns `None` when the system is not
/// positive definite at this damping level.
pub fn schur_linear_solver(
    a: &archytas_math::DMat,
    b: &DVec,
    num_landmarks: usize,
) -> Option<DVec> {
    if num_landmarks == 0 {
        return Cholesky::factor(a).ok().map(|ch| ch.solve(b));
    }
    let spec = BlockSpec::new(num_landmarks, a.rows()).ok()?;
    let sys = SchurSystem::new(a, b, spec).ok()?;
    sys.solve().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Pose, Quat, Vec3};
    use crate::window::{KeyframeState, Landmark, Observation};

    /// A bundle-adjustment-only window with perturbable ground truth.
    fn make_window(num_kf: usize, num_lm: usize) -> (SlidingWindow, Vec<Pose>) {
        let mut gt_poses = Vec::new();
        let mut w = SlidingWindow::new();
        for i in 0..num_kf {
            let pose = Pose::new(
                Quat::exp(&Vec3::new(0.0, 0.01 * i as f64, 0.0)),
                Vec3::new(0.3 * i as f64, 0.02 * i as f64, 0.0),
            );
            gt_poses.push(pose);
            w.keyframes
                .push(KeyframeState::at_pose(pose, i as f64 * 0.1));
        }
        for l in 0..num_lm {
            let fx = (l as f64 / num_lm as f64 - 0.5) * 0.8;
            let fy = ((l * 7 % num_lm) as f64 / num_lm as f64 - 0.5) * 0.5;
            let depth = 4.0 + (l % 5) as f64;
            let bearing = Vec3::new(fx, fy, 1.0);
            let p_w = gt_poses[0].transform(&(bearing * depth));
            w.landmarks.push(Landmark {
                id: l as u64,
                anchor: 0,
                bearing,
                inv_depth: 1.0 / depth,
            });
            for kf in 1..num_kf {
                let p_c = gt_poses[kf].inverse_transform(&p_w);
                if p_c.z() > 0.1 {
                    w.observations.push(Observation {
                        landmark: l,
                        keyframe: kf,
                        uv: [p_c.x() / p_c.z(), p_c.y() / p_c.z()],
                    });
                }
            }
        }
        (w, gt_poses)
    }

    #[test]
    fn converges_from_perturbed_initialization() {
        let (mut w, gt) = make_window(4, 30);
        // Perturb everything except the gauge-fixed first keyframe.
        for i in 1..w.keyframes.len() {
            w.keyframes[i] = w.keyframes[i].boxplus(&[
                0.01, -0.01, 0.005, 0.05, -0.03, 0.02, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ]);
        }
        for lm in &mut w.landmarks {
            lm.inv_depth *= 1.15;
        }
        let report = solve(
            &mut w,
            &FactorWeights::default(),
            None,
            &LmConfig::default(),
        );
        assert!(
            report.final_cost < report.initial_cost * 1e-4,
            "cost {} -> {}",
            report.initial_cost,
            report.final_cost
        );
        // Monocular, visual-only BA recovers the trajectory only up to a
        // global scale (the IMU would pin it); compare after normalizing by
        // the scale implied by the second keyframe.
        let scale = w.keyframes[1].pose.trans.norm() / gt[1].trans.norm();
        assert!(scale > 0.5 && scale < 2.0, "degenerate scale {scale}");
        for (i, gt_pose) in gt.iter().enumerate() {
            let est_scaled = w.keyframes[i].pose.trans * (1.0 / scale);
            let err = (est_scaled - gt_pose.trans).norm();
            assert!(err < 1e-3, "kf {i} error {err} (scale {scale})");
        }
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        let (mut w, _) = make_window(3, 10);
        let before = w.clone();
        let report = solve(
            &mut w,
            &FactorWeights::default(),
            None,
            &LmConfig::with_iterations(0),
        );
        assert_eq!(report.iterations, 0);
        assert_eq!(w.keyframes.len(), before.keyframes.len());
    }

    #[test]
    fn already_converged_stops_early() {
        let (mut w, _) = make_window(3, 15);
        let report = solve(
            &mut w,
            &FactorWeights::default(),
            None,
            &LmConfig::default(),
        );
        // Ground-truth initialization: cost is ~0, should stop after the
        // first check rather than burning all 6 iterations.
        assert!(report.iterations <= 2, "iterations {}", report.iterations);
        assert!(report.converged);
    }

    #[test]
    fn more_iterations_never_hurt() {
        let (w0, _) = make_window(4, 25);
        let perturb = |w: &SlidingWindow| {
            let mut w = w.clone();
            for i in 1..w.keyframes.len() {
                let mut d = [0.0; 15];
                d[3] = 0.08;
                d[1] = 0.02;
                w.keyframes[i] = w.keyframes[i].boxplus(&d);
            }
            w
        };
        let weights = FactorWeights::default();
        let mut w1 = perturb(&w0);
        let r1 = solve(&mut w1, &weights, None, &LmConfig::with_iterations(1));
        let mut w6 = perturb(&w0);
        let r6 = solve(&mut w6, &weights, None, &LmConfig::with_iterations(6));
        assert!(r6.final_cost <= r1.final_cost * 1.0001);
    }

    #[test]
    fn outcome_converged_on_clean_window() {
        let (mut w, _) = make_window(3, 15);
        let report = solve(
            &mut w,
            &FactorWeights::default(),
            None,
            &LmConfig::default(),
        );
        assert_eq!(report.outcome, SolveOutcome::Converged);
        assert!(!report.outcome.is_degraded());
    }

    #[test]
    fn outcome_zero_budget_is_converged() {
        let (mut w, _) = make_window(3, 10);
        let report = solve(
            &mut w,
            &FactorWeights::default(),
            None,
            &LmConfig::with_iterations(0),
        );
        assert_eq!(report.outcome, SolveOutcome::Converged);
    }

    #[test]
    fn outcome_degrades_on_nan_measurements() {
        let (mut w, _) = make_window(3, 10);
        for obs in &mut w.observations {
            obs.uv = [f64::NAN, f64::NAN];
        }
        let report = solve(
            &mut w,
            &FactorWeights::default(),
            None,
            &LmConfig::default(),
        );
        assert_eq!(
            report.outcome,
            SolveOutcome::Degraded {
                reason: DegradeReason::NonFiniteValues
            }
        );
        // The loop still exits in bounded time without panicking.
        assert!(report.iterations <= LmConfig::default().max_iterations);
    }

    #[test]
    fn outcome_budget_exhausted_when_still_improving() {
        let (mut w, _) = make_window(4, 30);
        for i in 1..w.keyframes.len() {
            w.keyframes[i] = w.keyframes[i].boxplus(&[
                0.02, -0.02, 0.01, 0.1, -0.06, 0.04, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
            ]);
        }
        for lm in &mut w.landmarks {
            lm.inv_depth *= 1.4;
        }
        let report = solve(
            &mut w,
            &FactorWeights::default(),
            None,
            &LmConfig::with_iterations(1),
        );
        // One iteration on a badly perturbed window: cost improved but the
        // tolerance test never ran true.
        if !report.converged {
            assert_eq!(report.outcome, SolveOutcome::BudgetExhausted);
        }
    }

    #[test]
    fn solve_error_display_and_source() {
        let e = SolveError::Linear(MathError::NotPositiveDefinite { pivot: 3 });
        assert!(e.to_string().contains("linear solve failed"));
        assert!(std::error::Error::source(&e).is_some());
        let spec_err = MathError::InvalidBlockSpec { split: 3, dim: 2 };
        assert_eq!(
            SolveError::from(spec_err.clone()),
            SolveError::Linear(spec_err)
        );
        assert!(std::error::Error::source(&SolveError::NonFinite).is_none());
    }

    #[test]
    fn report_fields_are_consistent() {
        let (mut w, _) = make_window(3, 12);
        for lm in &mut w.landmarks {
            lm.inv_depth *= 1.3;
        }
        let report = solve(
            &mut w,
            &FactorWeights::default(),
            None,
            &LmConfig::default(),
        );
        assert!(report.iterations >= 1);
        assert!(report.final_cost <= report.initial_cost);
        assert!(report.lambda > 0.0);
    }
}
