//! Bit-identity of the block-sparse solver pipeline against the dense
//! reference path.
//!
//! The block-sparse assembler + reused-workspace solve (`solve_in_workspace`)
//! must produce bit-for-bit the same reports and optimized windows as the
//! dense path (`solve_with` + `schur_linear_solver`), on fixed and
//! property-generated window shapes, with and without an IMU/marginalization
//! prior, and for every pool configuration.

use archytas_math::{BlockSparseSystem, DMat, SchurScratch};
use archytas_par::Pool;
use archytas_slam::{
    build_block_normal_equations, build_normal_equations, marginalize_oldest, schur_linear_solver,
    solve_in_workspace, solve_with, FactorWeights, ImuConstraint, ImuSample, KeyframeState,
    Landmark, LmConfig, Observation, Pose, Preintegration, Prior, Quat, SlidingWindow, SolveReport,
    SolverWorkspace, Vec3, GRAVITY,
};
use proptest::prelude::*;

const DAMP_FLOOR: f64 = 1e-9;

/// SplitMix64 → uniform f64 in [0, 1); deterministic per seed.
fn uniform(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) >> 11) as f64 / (1u64 << 53) as f64
}

fn centered(state: &mut u64) -> f64 {
    uniform(state) - 0.5
}

/// A visual-only window with pseudo-random geometry: `num_kf` keyframes on a
/// gently curving trajectory and `num_lm` landmarks spread across anchors.
fn make_window(num_kf: usize, num_lm: usize, seed: u64) -> SlidingWindow {
    assert!(num_kf >= 2);
    let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1);
    let mut w = SlidingWindow::new();
    let mut poses = Vec::new();
    for i in 0..num_kf {
        let pose = Pose::new(
            Quat::exp(&Vec3::new(
                0.02 * centered(&mut s),
                0.015 * i as f64 + 0.02 * centered(&mut s),
                0.02 * centered(&mut s),
            )),
            Vec3::new(
                0.35 * i as f64,
                0.05 * centered(&mut s),
                0.05 * centered(&mut s),
            ),
        );
        poses.push(pose);
        w.keyframes
            .push(KeyframeState::at_pose(pose, i as f64 * 0.1));
    }
    for l in 0..num_lm {
        let anchor = l % (num_kf - 1);
        let bearing = Vec3::new(0.8 * centered(&mut s), 0.5 * centered(&mut s), 1.0);
        let depth = 4.0 + 4.0 * uniform(&mut s);
        let p_w = poses[anchor].transform(&(bearing * depth));
        // Slightly wrong inverse depth so the solver has work to do.
        let inv_depth = (1.0 / depth) * (1.0 + 0.2 * centered(&mut s));
        w.landmarks.push(Landmark {
            id: l as u64,
            anchor,
            bearing,
            inv_depth,
        });
        for kf in (anchor + 1)..num_kf {
            let p_c = poses[kf].inverse_transform(&p_w);
            if p_c.z() > 0.1 {
                w.observations.push(Observation {
                    landmark: l,
                    keyframe: kf,
                    uv: [
                        p_c.x() / p_c.z() + 0.002 * centered(&mut s),
                        p_c.y() / p_c.z() + 0.002 * centered(&mut s),
                    ],
                });
            }
        }
    }
    w
}

/// A window with IMU constraints, suitable for producing a marginalization
/// prior (mirrors the marginalization test fixture).
fn make_imu_window() -> SlidingWindow {
    let mut w = SlidingWindow::new();
    for i in 0..4 {
        w.keyframes.push(KeyframeState::at_pose(
            Pose::new(Quat::IDENTITY, Vec3::new(i as f64 * 0.4, 0.0, 0.0)),
            i as f64 * 0.1,
        ));
        w.keyframes[i].velocity = Vec3::new(4.0, 0.0, 0.0);
    }
    let specs = [
        (0usize, 0.1, 0.05, 5.0),
        (0, -0.2, 0.1, 7.0),
        (1, 0.15, -0.1, 6.0),
        (1, -0.1, -0.2, 5.5),
        (2, 0.05, 0.15, 6.5),
    ];
    for (idx, (anchor, x, y, d)) in specs.iter().enumerate() {
        let bearing = Vec3::new(*x, *y, 1.0);
        let p_w = w.keyframes[*anchor].pose.transform(&(bearing * *d));
        w.landmarks.push(Landmark {
            id: idx as u64,
            anchor: *anchor,
            bearing,
            inv_depth: 1.0 / d,
        });
        for kf in (*anchor + 1)..w.keyframes.len() {
            let p_c = w.keyframes[kf].pose.inverse_transform(&p_w);
            w.observations.push(Observation {
                landmark: idx,
                keyframe: kf,
                uv: [p_c.x() / p_c.z(), p_c.y() / p_c.z()],
            });
        }
    }
    for i in 0..w.keyframes.len() - 1 {
        let samples: Vec<ImuSample> = (0..20)
            .map(|_| ImuSample {
                gyro: Vec3::ZERO,
                accel: -GRAVITY,
                dt: 0.005,
            })
            .collect();
        w.imu.push(ImuConstraint {
            first: i,
            preintegration: Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO),
        });
    }
    w
}

fn pools() -> [Pool; 3] {
    // serial_threshold 0 forces the parallel path even for tiny systems, so
    // 2- and 8-thread pools genuinely exercise multi-threaded dispatch.
    [1, 2, 8].map(|t| Pool::with_threads(t).with_serial_threshold(0))
}

/// Dense reference damping, replicating the solver's in-place rule
/// `d + λ·max(d, floor)` on a fresh copy of `a`.
fn damp_dense(a: &DMat, lambda: f64) -> DMat {
    let mut out = a.clone();
    for i in 0..a.rows() {
        let d = a.get(i, i);
        out.set(i, i, d + lambda * d.max(DAMP_FLOOR));
    }
    out
}

/// Asserts both solves agree bit-for-bit: report and optimized states.
fn assert_solve_equivalent(window: &SlidingWindow, prior: Option<&Prior>, config: &LmConfig) {
    let weights = FactorWeights::default();

    let mut dense_w = window.clone();
    let dense_report = solve_with(&mut dense_w, &weights, prior, config, &schur_linear_solver);

    let mut block_w = window.clone();
    let mut ws = SolverWorkspace::new();
    let block_report = solve_in_workspace(&mut ws, &mut block_w, &weights, prior, config);

    assert_reports_equal(&dense_report, &block_report);
    assert_windows_equal(&dense_w, &block_w);
}

fn assert_reports_equal(dense: &SolveReport, block: &SolveReport) {
    assert_eq!(dense.iterations, block.iterations);
    assert_eq!(dense.initial_cost.to_bits(), block.initial_cost.to_bits());
    assert_eq!(dense.final_cost.to_bits(), block.final_cost.to_bits());
    assert_eq!(dense.converged, block.converged);
    assert_eq!(dense.lambda.to_bits(), block.lambda.to_bits());
    assert_eq!(
        dense.last_step_norm.to_bits(),
        block.last_step_norm.to_bits()
    );
    assert_eq!(dense.step_norms.len(), block.step_norms.len());
    for (a, b) in dense.step_norms.iter().zip(&block.step_norms) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

fn assert_windows_equal(dense: &SlidingWindow, block: &SlidingWindow) {
    // KeyframeState/Landmark derive PartialEq over f64 fields; combined with
    // the report's bitwise step norms this pins the optimized state.
    assert_eq!(dense.keyframes, block.keyframes);
    assert_eq!(dense.landmarks, block.landmarks);
    assert_eq!(dense.observations, block.observations);
}

#[test]
fn block_assembly_matches_dense_bitwise() {
    for (num_kf, num_lm, seed) in [(2, 1, 3), (3, 7, 11), (4, 12, 7), (5, 20, 42)] {
        let w = make_window(num_kf, num_lm, seed);
        let weights = FactorWeights::default();
        let ne = build_normal_equations(&w, &weights, None);

        let mut sys = BlockSparseSystem::new();
        let info = build_block_normal_equations(&w, &weights, None, &mut sys);
        assert_eq!(info.cost.to_bits(), ne.cost.to_bits());
        assert_eq!(info.num_landmarks, ne.num_landmarks);
        assert_eq!(info.used_observations, ne.used_observations);

        let (a, b) = sys.to_dense();
        assert_eq!(a.rows(), ne.a.rows());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert_eq!(
                    a.get(i, j).to_bits(),
                    ne.a.get(i, j).to_bits(),
                    "A[{i}][{j}] differs ({num_kf} kf, {num_lm} lm)"
                );
            }
            assert_eq!(b[i].to_bits(), ne.b[i].to_bits(), "b[{i}] differs");
        }
    }
}

#[test]
fn damped_linear_solve_matches_dense_across_pools() {
    let w = make_window(4, 14, 9);
    let weights = FactorWeights::default();
    let ne = build_normal_equations(&w, &weights, None);

    let mut sys = BlockSparseSystem::new();
    build_block_normal_equations(&w, &weights, None, &mut sys);
    let mut scratch = SchurScratch::default();
    let mut out = archytas_math::DVec::zeros(0);

    // Sequential damp calls exercise the snapshot-undo path: the second
    // damping must start from the undamped diagonal, not stack on the first.
    for lambda in [1e-4, 3e-2, 0.5] {
        let damped = damp_dense(&ne.a, lambda);
        let reference =
            schur_linear_solver(&damped, &ne.b, ne.num_landmarks).expect("dense solve succeeds");

        sys.damp(lambda, DAMP_FLOOR);
        for pool in pools() {
            sys.solve_into(&mut scratch, &pool, &mut out)
                .expect("block solve succeeds");
            assert_eq!(out.len(), reference.len());
            for i in 0..out.len() {
                assert_eq!(
                    out[i].to_bits(),
                    reference[i].to_bits(),
                    "x[{i}] differs at lambda={lambda} threads={}",
                    pool.threads()
                );
            }
        }
    }
}

#[test]
fn full_solve_equivalent_visual_only() {
    let config = LmConfig::default();
    for (num_kf, num_lm, seed) in [(2, 3, 1), (3, 10, 5), (4, 24, 17)] {
        let w = make_window(num_kf, num_lm, seed);
        assert_solve_equivalent(&w, None, &config);
    }
}

#[test]
fn full_solve_equivalent_with_imu_and_prior() {
    let weights = FactorWeights::default();
    let full = make_imu_window();
    let result = marginalize_oldest(&full, &weights, None);
    let mut w = result.window;
    // Perturb the survivors so the prior actually pulls on the solution.
    for kf in w.keyframes.iter_mut().skip(1) {
        kf.pose.trans = kf.pose.trans + Vec3::new(0.01, -0.005, 0.004);
    }
    for lm in &mut w.landmarks {
        lm.inv_depth *= 1.05;
    }
    assert_solve_equivalent(&w, Some(&result.prior), &LmConfig::default());
}

#[test]
fn workspace_reuse_across_window_shapes() {
    // One workspace across windows of growing and shrinking size: buffers are
    // resized and reused, and every solve must still match a fresh dense run.
    let config = LmConfig::default();
    let weights = FactorWeights::default();
    let mut ws = SolverWorkspace::new();
    for (num_kf, num_lm, seed) in [(4, 20, 2), (2, 2, 8), (5, 30, 21), (3, 1, 13)] {
        let template = make_window(num_kf, num_lm, seed);

        let mut dense_w = template.clone();
        let dense_report = solve_with(&mut dense_w, &weights, None, &config, &schur_linear_solver);

        let mut block_w = template.clone();
        let block_report = solve_in_workspace(&mut ws, &mut block_w, &weights, None, &config);

        assert_reports_equal(&dense_report, &block_report);
        assert_windows_equal(&dense_w, &block_w);
    }
}

#[test]
fn no_landmark_window_falls_back_identically() {
    // p = 0: the Schur split degenerates and both paths go straight through
    // a dense Cholesky of the pose block (held together by the prior).
    let weights = FactorWeights::default();
    let full = make_imu_window();
    let result = marginalize_oldest(&full, &weights, None);
    let mut w = result.window;
    w.landmarks.clear();
    w.observations.clear();
    assert_solve_equivalent(&w, Some(&result.prior), &LmConfig::default());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_full_solve_equivalent(
        num_kf in 2usize..5,
        num_lm in 1usize..14,
        seed in 0u64..1_000_000,
    ) {
        let w = make_window(num_kf, num_lm, seed);
        let config = LmConfig { max_iterations: 3, ..LmConfig::default() };
        assert_solve_equivalent(&w, None, &config);
    }
}
