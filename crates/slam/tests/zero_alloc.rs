//! Counting-allocator proof that the LM hot path is allocation-free after
//! warmup.
//!
//! One test function only: the counter is a process-global, so this file must
//! not share its binary with other tests whose threads would allocate
//! concurrently.
//!
//! The measurement is a *per-iteration delta*: with a warmed
//! [`SolverWorkspace`], a 6-iteration solve must allocate exactly as much as
//! a 1-iteration solve on an identical window — i.e. the five extra LM
//! iterations (assembly, damping, Schur elimination, Cholesky, triangular
//! solves, cost evaluation, candidate bookkeeping) perform zero heap
//! allocations. Per-solve fixed costs that don't scale with iterations
//! (`Pool::global`'s environment reads) cancel out of the delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use archytas_slam::{
    solve_in_workspace, FactorWeights, ImuConstraint, ImuSample, KeyframeState, Landmark, LmConfig,
    Observation, Pose, Preintegration, Quat, SlidingWindow, SolverWorkspace, Vec3,
};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A visual+inertial window shaped like the benchmark's (several keyframes,
/// dozens of landmarks, IMU chain), perturbed so LM actually iterates.
fn make_window(num_kf: usize, num_lm: usize) -> SlidingWindow {
    let mut gt_poses = Vec::new();
    let mut w = SlidingWindow::new();
    for i in 0..num_kf {
        let pose = Pose::new(
            Quat::exp(&Vec3::new(0.0, 0.01 * i as f64, 0.0)),
            Vec3::new(0.3 * i as f64, 0.02 * i as f64, 0.0),
        );
        gt_poses.push(pose);
        w.keyframes
            .push(KeyframeState::at_pose(pose, i as f64 * 0.1));
    }
    for l in 0..num_lm {
        let fx = (l as f64 / num_lm as f64 - 0.5) * 0.8;
        let fy = ((l * 7 % num_lm) as f64 / num_lm as f64 - 0.5) * 0.5;
        let depth = 4.0 + (l % 5) as f64;
        let bearing = Vec3::new(fx, fy, 1.0);
        let p_w = gt_poses[0].transform(&(bearing * depth));
        w.landmarks.push(Landmark {
            id: l as u64,
            anchor: 0,
            bearing,
            inv_depth: 1.0 / depth,
        });
        for kf in 1..num_kf {
            let p_c = gt_poses[kf].inverse_transform(&p_w);
            if p_c.z() > 0.1 {
                w.observations.push(Observation {
                    landmark: l,
                    keyframe: kf,
                    uv: [p_c.x() / p_c.z(), p_c.y() / p_c.z()],
                });
            }
        }
    }
    for i in 0..num_kf.saturating_sub(1) {
        let samples: Vec<ImuSample> = (0..20)
            .map(|_| ImuSample {
                gyro: Vec3::new(0.0, 0.1, 0.0),
                accel: Vec3::new(0.2, 0.0, 9.81),
                dt: 0.005,
            })
            .collect();
        w.imu.push(ImuConstraint {
            first: i,
            preintegration: Preintegration::integrate(&samples, Vec3::ZERO, Vec3::ZERO),
        });
    }
    // Perturb so the cost is far from the minimum and every budgeted
    // iteration accepts a step.
    for i in 1..w.keyframes.len() {
        w.keyframes[i] = w.keyframes[i].boxplus(&[
            0.01, -0.01, 0.005, 0.05, -0.03, 0.02, 0.01, -0.01, 0.005, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0,
        ]);
    }
    for lm in &mut w.landmarks {
        lm.inv_depth *= 1.2;
    }
    w
}

#[test]
fn lm_iterations_allocate_nothing_after_warmup() {
    let weights = FactorWeights::default();
    let window = make_window(6, 60);
    let mut ws = SolverWorkspace::new();

    // Warmup: grow every workspace buffer (block system, Schur scratch,
    // Cholesky, candidate window, increment) to this window's shape.
    let mut warm = window.clone();
    let r = solve_in_workspace(
        &mut ws,
        &mut warm,
        &weights,
        None,
        &LmConfig::with_iterations(6),
    );
    assert!(r.iterations >= 1);

    // The counter is process-global, so a concurrent harness thread can leak
    // stray allocations into a measured region. The solver itself is
    // deterministic, and noise only ever *adds* — so measure each budget
    // several times (cloning the input window outside the measured region)
    // and take the minimum, which is the solver's true count.
    let mut measure = |iterations: usize| -> (u64, usize) {
        let mut best = u64::MAX;
        let mut iters_ran = 0;
        for _ in 0..5 {
            let mut w = window.clone();
            let before = allocations();
            let r = solve_in_workspace(
                &mut ws,
                &mut w,
                &weights,
                None,
                &LmConfig::with_iterations(iterations),
            );
            best = best.min(allocations() - before);
            iters_ran = r.iterations;
        }
        (best, iters_ran)
    };

    let (short_allocs, short_iters) = measure(1);
    let (long_allocs, long_iters) = measure(6);

    // Both solves must have actually iterated (same window, same warmed
    // workspace — the only difference is the iteration budget).
    assert_eq!(short_iters, 1);
    assert!(
        long_iters > short_iters,
        "long solve stopped after {long_iters} iterations"
    );

    assert_eq!(
        long_allocs,
        short_allocs,
        "the {} extra LM iterations allocated {} times \
         (1-iter solve: {short_allocs}, {long_iters}-iter solve: {long_allocs})",
        long_iters - short_iters,
        long_allocs as i64 - short_allocs as i64,
    );

    // The fixed-width dispatch path in isolation: on this window the block
    // assembler and Schur solve run the fused kb = 6 kernels (whole-
    // observation visual scatter, rank-6 SYRK, fold back-substitution), and
    // a warmed assemble→damp→solve cycle must not allocate at all — not
    // merely "no more than a 1-iteration solve". Same minimum-over-repeats
    // discipline as above for counter noise.
    let mut sys = archytas_math::BlockSparseSystem::new();
    let mut scratch = archytas_math::SchurScratch::default();
    let mut delta = archytas_math::DVec::zeros(0);
    let pool = archytas_par::Pool::global();
    let weights2 = FactorWeights::default();
    archytas_slam::build_block_normal_equations(&window, &weights2, None, &mut sys);
    sys.damp(1e-3, 1e-9);
    sys.solve_into(&mut scratch, &pool, &mut delta).unwrap();

    let mut direct_best = u64::MAX;
    for _ in 0..5 {
        let before = allocations();
        archytas_slam::build_block_normal_equations(&window, &weights2, None, &mut sys);
        sys.damp(1e-3, 1e-9);
        sys.solve_into(&mut scratch, &pool, &mut delta).unwrap();
        direct_best = direct_best.min(allocations() - before);
    }
    assert_eq!(
        direct_best, 0,
        "warmed fixed-width assemble/damp/solve cycle allocated {direct_best} times"
    );
}
