//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no crates.io access, so the
//! subset of proptest it uses is provided here: the [`Strategy`] trait with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `collection::vec`, the `proptest!` / `prop_assert!` / `prop_assert_eq!`
//! macros and [`ProptestConfig`].
//!
//! Differences from real proptest: no shrinking (a failing case reports the
//! case index and message only) and a fixed deterministic seed per test
//! function, so failures reproduce exactly across runs.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }
}

/// Error carried out of a failing property body.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-`proptest!` configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy mapping values through a function (see [`Strategy::prop_map`]).
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Dependent strategy (see [`Strategy::prop_flat_map`]).
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).sample(rng) as f32
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A), (A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `elem` values (see [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.size.lo as u64..=self.size.hi as u64).sample(rng) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Stable per-test seed derived from the test's name.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a; avoids RandomState's per-process randomness so failures
    // reproduce across runs.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestRng,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random strategy samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::new($crate::seed_for(stringify!($name)));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns!(($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let f = (-10.0..10.0f64).sample(&mut rng);
            assert!((-10.0..10.0).contains(&f));
            let u = (1usize..=10).sample(&mut rng);
            assert!((1..=10).contains(&u));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::new(2);
        let strat = (1usize..=5).prop_flat_map(|n| collection::vec(0.0..1.0f64, n));
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..=5).contains(&v.len()));
        }
        let doubled = (1usize..4).prop_map(|n| n * 2);
        assert!(doubled.sample(&mut rng) % 2 == 0);
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(seed_for("abc"), seed_for("abc"));
        assert_ne!(seed_for("abc"), seed_for("abd"));
    }

    proptest! {
        #[test]
        fn macro_binds_tuples((a, b) in (0usize..10, 0usize..10), c in 0.0..1.0f64) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((0.0..1.0).contains(&c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(c, 2.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn macro_respects_config(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    use super::seed_for;
}
