//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! small API subset it uses (`SmallRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`) is provided here, std-only.
//!
//! `SmallRng` is the same generator family real `rand 0.8` uses on 64-bit
//! targets: xoshiro256++ seeded through SplitMix64. Streams are deterministic
//! for a given seed, which is all the workload synthesizers require.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same derivation real `rand` uses.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// Sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

/// Types uniformly sampleable from a range. One generic `SampleRange` impl
/// per range shape (mirroring real rand) keeps float-literal inference
/// working at call sites like `rng.gen_range(0.0..step)`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
        let v = lo + (hi - lo) * unit_f64(rng.next_u64());
        // Guard the open upper bound against rounding.
        if v >= hi && lo < hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        let wide = f64::sample_between(f64::from(lo), f64::from(hi), inclusive, rng);
        (wide as f32).clamp(lo, hi - (hi - lo) * f32::EPSILON)
    }
}

/// Unbiased-enough integer draw in `[0, span)` by 128-bit widening multiply.
#[inline]
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((u128::from(bits) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u64;
                (lo as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — `rand 0.8`'s `SmallRng` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; reseed it.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0f64).to_bits(),
                b.gen_range(0.0..1.0f64).to_bits()
            );
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen_range(0..u64::MAX), b.gen_range(0..u64::MAX));
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3.0..25.0f64);
            assert!((3.0..25.0).contains(&v));
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(2usize..9);
            assert!((2..9).contains(&v));
            let w = rng.gen_range(-4i64..=4);
            assert!((-4..=4).contains(&w));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
