//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use: `criterion_group!`,
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size` and [`Bencher::iter`].
//!
//! Measurement model: every benchmark runs untimed warm-up batches (so
//! caches, branch predictors and lazily-grown workspace buffers reach steady
//! state), then is timed for `sample_size` samples; each sample batches
//! enough iterations to be clock-resolvable. The mean *and* the per-sample
//! standard deviation are reported — a mean without spread cannot be gated
//! on. Besides the human-readable line, each benchmark emits a
//! machine-readable `BENCHJSON {...}` line (`mean_ns`, `stddev_ns`,
//! `samples`) that `scripts/bench_smoke.sh` collects into `BENCH_par.json`.
//!
//! CLI: `--quick` (or env `ARCHYTAS_BENCH_QUICK=1`) caps samples at
//! [`QUICK_SAMPLES`] (never below 10 — two-sample smoke means proved too
//! noisy to compare against baselines); all other flags cargo passes are
//! ignored.

use std::fmt::Display;
use std::time::Instant;

/// Samples per benchmark in `--quick` (smoke) mode. Ten is the floor at
/// which a mean/stddev pair is stable enough for the 1.15–1.25x regression
/// gates in `scripts/`; the previous quick mode's two samples were not.
pub const QUICK_SAMPLES: usize = 10;

/// Untimed warm-up batches executed before the first timed sample.
const WARMUP_BATCHES: u64 = 3;

/// Benchmark identifier (`function_name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("ARCHYTAS_BENCH_QUICK").is_ok();
        Self { quick }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        self.run(&id.to_string(), |b| f(b));
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(&id.name, |b| f(b, input));
    }

    /// Ends the group (kept for API compatibility; drop does the same).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let samples = if self.criterion.quick {
            QUICK_SAMPLES
        } else {
            // A configured size below the quick floor would be noisier than
            // the smoke runs it is compared against; clamp up.
            self.sample_size.max(QUICK_SAMPLES)
        };
        let mut bencher = Bencher {
            samples,
            mean_ns: 0.0,
            stddev_ns: 0.0,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id);
        println!(
            "{full:<50} time: {:>12.1} ns/iter (+/- {:.1})",
            bencher.mean_ns, bencher.stddev_ns
        );
        println!(
            "BENCHJSON {{\"name\":\"{full}\",\"mean_ns\":{:.1},\"stddev_ns\":{:.1},\"samples\":{samples}}}",
            bencher.mean_ns, bencher.stddev_ns
        );
    }
}

/// Per-benchmark timing driver.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
    stddev_ns: f64,
}

impl Bencher {
    /// Times `routine`, batching iterations so each sample is
    /// clock-resolvable. Runs [`WARMUP_BATCHES`] untimed batches first, then
    /// records one ns/iter value per sample; the reported mean and standard
    /// deviation are taken over those per-sample values.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Batch sizing from one untimed call: target ≥ ~1 ms per sample.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once_ns = start.elapsed().as_nanos().max(1) as f64;
        let batch = ((1_000_000.0 / once_ns).ceil() as u64).clamp(1, 1_000_000);

        // Warm-up proper: untimed batches so caches, branch predictors and
        // lazily-grown workspace buffers reach steady state before the
        // first timed sample (the first call above already paid any
        // one-time setup, but not the steady-state warmup).
        for _ in 0..WARMUP_BATCHES * batch {
            std::hint::black_box(routine());
        }

        let mut sample_means = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            sample_means.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        let n = sample_means.len() as f64;
        self.mean_ns = sample_means.iter().sum::<f64>() / n;
        // Sample (n−1) standard deviation of the per-sample means.
        self.stddev_ns = if sample_means.len() > 1 {
            let var = sample_means
                .iter()
                .map(|m| (m - self.mean_ns).powi(2))
                .sum::<f64>()
                / (n - 1.0);
            var.sqrt()
        } else {
            0.0
        };
    }
}

/// Groups benchmark functions under one callable (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_positive_time() {
        let mut c = Criterion { quick: true };
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("simulate_window", "nd28");
        assert_eq!(id.name, "simulate_window/nd28");
    }
}
