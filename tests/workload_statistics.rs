//! Workload-statistics and datapath-fidelity checks: the generated
//! sequences must exhibit the ratios the paper profiles, and the f32
//! accelerator datapath must track the f64 software solve within
//! single-precision error across realistic windows.

use archytas_dataset::{euroc_sequences, kitti_sequences, PipelineConfig, VioPipeline};
use archytas_hw::f32_linear_solver;
use archytas_slam::{build_normal_equations, schur_linear_solver, FactorWeights};

#[test]
fn paper_profiling_ratios_hold() {
    // Sec. 4.2: "a typical sliding window on average would have 10× more
    // feature points than keyframes" and "the number of observations is
    // typically 10× more than that of feature points" (within a window the
    // observation count is No ≈ 3–10 per feature; the 10× figure describes
    // dense stretches). Check the generated suites sit in those regimes.
    for spec in [
        kitti_sequences()[1].truncated(6.0),
        euroc_sequences()[0].truncated(6.0),
    ] {
        let data = spec.build();
        let workloads = data.window_workloads(10);
        let mean_features: f64 =
            workloads.iter().map(|w| w.features as f64).sum::<f64>() / workloads.len() as f64;
        let mean_ratio: f64 = workloads
            .iter()
            .map(|w| w.avg_observations_per_feature())
            .sum::<f64>()
            / workloads.len() as f64;
        assert!(
            mean_features > 10.0 * 10.0 * 0.5,
            "{}: features/keyframes ratio too low ({mean_features:.0}/10)",
            data.spec.name
        );
        assert!(
            (2.0..12.0).contains(&mean_ratio),
            "{}: observations/feature {mean_ratio:.1} out of regime",
            data.spec.name
        );
    }
}

#[test]
fn marginalization_count_tracks_window_slide() {
    let data = kitti_sequences()[4].truncated(5.0).build();
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    let mut total_marginalized = 0usize;
    let mut windows = 0usize;
    for frame in &data.frames {
        if pipeline.push_frame(frame) {
            let r = pipeline.optimize_and_slide(2);
            total_marginalized += r.workload.marginalized_features;
            windows += 1;
        }
    }
    assert!(windows > 10);
    // On a moving platform, features continuously age out of the window.
    let am_mean = total_marginalized as f64 / windows as f64;
    assert!(am_mean > 1.0, "mean am {am_mean:.1}");
}

#[test]
fn f32_datapath_tracks_f64_across_real_windows() {
    let data = kitti_sequences()[2].truncated(4.0).build();
    let mut pipeline = VioPipeline::new(PipelineConfig::default());
    let weights = FactorWeights::default();
    let mut checked = 0usize;
    for frame in &data.frames {
        if !pipeline.push_frame(frame) {
            continue;
        }
        // Damped normal equations, as LM produces them.
        let ne = build_normal_equations(pipeline.window(), &weights, pipeline.prior());
        let mut damped = ne.a.clone();
        for i in 0..damped.rows() {
            damped.add_at(i, i, 1e-3 * ne.a.get(i, i).max(1e-9));
        }
        let x64 = schur_linear_solver(&damped, &ne.b, ne.num_landmarks).expect("f64 solvable");
        let x32 = f32_linear_solver(&damped, &ne.b, ne.num_landmarks).expect("f32 solvable");
        let rel = (&x64 - &x32).norm() / x64.norm().max(1e-12);
        assert!(rel < 5e-3, "window {checked}: f32 divergence {rel:.2e}");
        checked += 1;
        // Keep the sequence moving.
        let _ = pipeline.optimize_and_slide(2);
        if checked >= 8 {
            break;
        }
    }
    assert!(checked >= 5, "checked only {checked} windows");
}

#[test]
fn drought_sequences_expose_runtime_dynamic_range() {
    // Sec. 6.1's premise: the feature count varies enough at run time that a
    // static worst-case design wastes work. The generated KITTI-like 00 must
    // have a ≥3× spread between its richest and poorest windows.
    // The deep droughts appear past the 40 s mark; cover the full drive.
    let data = kitti_sequences()[0].truncated(100.0).build();
    let workloads = data.window_workloads(10);
    let max = workloads.iter().map(|w| w.features).max().unwrap();
    let min = workloads.iter().map(|w| w.features).min().unwrap();
    assert!(
        max >= 3 * min.max(1),
        "feature spread {min}..{max} too flat for the runtime story"
    );
}
