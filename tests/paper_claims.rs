//! The paper's headline quantitative claims, pinned as assertions. These are
//! the fast, model-level claims; the estimator-in-the-loop claims live in
//! the experiment binaries (see EXPERIMENTS.md).

use archytas_baselines::{CpuPlatform, HlsCholesky, HLS_REFERENCE_DIM, HLS_REFERENCE_LANES};
use archytas_core::{knob_bounds, ND_MAX, NM_MAX, S_MAX};
use archytas_hw::{
    window_cycles, AcceleratorConfig, AcceleratorModel, FpgaPlatform, ResourceModel, HIGH_PERF,
    LOW_POWER,
};
use archytas_mdfg::{optimal_nls_blocking, saving_vs_dense, LayoutScheme, ProblemShape};

#[test]
fn design_space_is_90000_points() {
    assert_eq!(ND_MAX * NM_MAX * S_MAX, 90_000);
    let (nd, nm, s) = knob_bounds(&FpgaPlatform::zc706());
    assert_eq!((nd, nm, s), (ND_MAX, NM_MAX, S_MAX));
}

#[test]
fn table2_dsp_counts_exact() {
    let model = ResourceModel::calibrated();
    assert_eq!(model.resources(&HIGH_PERF).dsp, 849.0);
    assert_eq!(model.resources(&LOW_POWER).dsp, 442.0);
}

#[test]
fn storage_saving_is_78_percent() {
    let saving = saving_vs_dense(LayoutScheme::SplitCompressed, 15, 15);
    assert!((saving - 0.787).abs() < 0.01);
}

#[test]
fn hls_cholesky_gap_is_16x() {
    let gap = HlsCholesky::default().slowdown_vs_hand(HLS_REFERENCE_DIM, HLS_REFERENCE_LANES);
    assert!((gap - 16.4).abs() < 2.5, "gap {gap}");
}

#[test]
fn knobs_span_over_20x_latency() {
    let shape = ProblemShape::typical();
    let slow = window_cycles(&shape, &AcceleratorConfig::new(1, 1, 1), 6);
    let fast = window_cycles(&shape, &AcceleratorConfig::new(30, 24, 120), 6);
    assert!(slow / fast > 20.0, "span {:.1}", slow / fast);
}

#[test]
fn optimal_blocking_is_always_dtype() {
    // "the optimal solution almost always blocks A in such a way that U is
    // a diagonal matrix" — across the workload range the datasets produce.
    for features in [30usize, 80, 150, 250, 400] {
        for obs in [3usize, 6, 10] {
            let shape = ProblemShape {
                features,
                obs_per_feature: obs,
                ..ProblemShape::typical()
            };
            let choice = optimal_nls_blocking(&shape);
            assert!(choice.leading_diagonal, "{shape:?}");
            assert_eq!(choice.p, features, "{shape:?}");
        }
    }
}

#[test]
fn fig16_headline_ratios_in_band() {
    let shape = ProblemShape::typical();
    let hp = AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706());
    let intel = CpuPlatform::intel_comet_lake();
    let arm = CpuPlatform::arm_a57();
    let speed_intel = intel.window_time_ms(&shape, 6) / hp.window_latency_ms(&shape, 6);
    let energy_intel = intel.window_energy_mj(&shape, 6) / hp.window_energy_mj(&shape, 6);
    let speed_arm = arm.window_time_ms(&shape, 6) / hp.window_latency_ms(&shape, 6);
    let energy_arm = arm.window_energy_mj(&shape, 6) / hp.window_energy_mj(&shape, 6);
    // Paper: 6.2x/74x vs Intel, 39.7x/14.6x vs Arm. Bands are ±45 %.
    assert!((3.5..10.0).contains(&speed_intel), "{speed_intel:.1}");
    assert!((40.0..110.0).contains(&energy_intel), "{energy_intel:.1}");
    assert!((22.0..60.0).contains(&speed_arm), "{speed_arm:.1}");
    assert!((8.0..25.0).contains(&energy_arm), "{energy_arm:.1}");
}

#[test]
fn virtex_outruns_zc706_outruns_kintex() {
    // Sec. 7.7's board ordering emerges from the scaled knob lattices.
    let shape = ProblemShape::typical();
    let mut latencies = Vec::new();
    for platform in [
        FpgaPlatform::kintex7_160t(),
        FpgaPlatform::zc706(),
        FpgaPlatform::virtex7_690t(),
    ] {
        let spec = archytas_core::DesignSpec {
            shape,
            iterations: 6,
            platform: platform.clone(),
            objective: archytas_core::Objective::MinLatency,
        };
        latencies.push(
            archytas_core::synthesize(&spec)
                .expect("feasible")
                .latency_ms,
        );
    }
    assert!(latencies[0] > latencies[1], "Kintex slower than ZC706");
    assert!(latencies[1] > latencies[2], "ZC706 slower than Virtex");
}
