//! Property-based tests of the synthesizer and run-time system: constraints
//! hold for arbitrary specifications.

use archytas_core::{synthesize, DesignSpec, GatingTable, IterCounter, IterPolicy, Objective};
use archytas_hw::{window_cycles, AcceleratorConfig, FpgaPlatform, PowerModel};
use archytas_mdfg::ProblemShape;
use proptest::prelude::*;

fn shape_strategy() -> impl Strategy<Value = ProblemShape> {
    (20usize..400, 4usize..16, 2usize..15, 0usize..60).prop_map(
        |(features, keyframes, obs, marg)| ProblemShape {
            features,
            keyframes,
            states_per_keyframe: 15,
            obs_per_feature: obs,
            marginalized_features: marg.min(features),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the workload and latency bound, a successful synthesis
    /// respects both constraints and is power-minimal among a sample of
    /// feasible alternatives.
    #[test]
    fn synthesis_respects_constraints(shape in shape_strategy(), bound_ms in 1.0..40.0f64) {
        let spec = DesignSpec {
            shape,
            iterations: 6,
            platform: FpgaPlatform::zc706(),
            objective: Objective::MinPowerUnderLatency(bound_ms),
        };
        let power = PowerModel::zc706();
        if let Ok(design) = synthesize(&spec) {
            prop_assert!(design.latency_ms <= bound_ms + 1e-9);
            prop_assert!(design.resources.fits(&spec.platform.capacity));
            // Spot-check optimality: a few cheaper configurations must all
            // violate a constraint.
            for (dn, dm, ds) in [(1i64, 0i64, 0i64), (0, 1, 0), (0, 0, 1)] {
                let nd = design.config.nd as i64 - dn;
                let nm = design.config.nm as i64 - dm;
                let s = design.config.s as i64 - ds;
                if nd < 1 || nm < 1 || s < 1 {
                    continue;
                }
                let smaller = AcceleratorConfig::new(nd as usize, nm as usize, s as usize);
                if power.power_w(&smaller) < design.power_w {
                    let lat = window_cycles(&shape, &smaller, 6)
                        / (spec.platform.clock_mhz * 1e3);
                    prop_assert!(
                        lat > bound_ms,
                        "cheaper {smaller:?} is feasible at {lat} ms"
                    );
                }
            }
        }
    }

    /// Gating tables never exceed the built design and always meet the
    /// bound when any in-bounds configuration can.
    #[test]
    fn gating_table_sound(shape in shape_strategy(), bound_ms in 1.0..30.0f64) {
        let platform = FpgaPlatform::zc706();
        let built = AcceleratorConfig::new(28, 19, 97);
        let table = GatingTable::build(&built, &shape, bound_ms, &platform);
        let clock_khz = platform.clock_mhz * 1e3;
        for iter in 1..=6usize {
            let active = table.active_for(iter);
            prop_assert!(active.within(&built));
            let full_lat = window_cycles(&shape, &built, iter) / clock_khz;
            let active_lat = window_cycles(&shape, &active, iter) / clock_khz;
            // If even the full design cannot meet the bound, the table falls
            // back to it; otherwise the active config must meet the bound.
            if full_lat <= bound_ms {
                prop_assert!(active_lat <= bound_ms + 1e-9);
            }
        }
    }

    /// The 2-bit counter's budget is always within 1..=6 and changes by at
    /// most one step per window, whatever the target sequence.
    #[test]
    fn counter_is_bounded_and_smooth(targets in proptest::collection::vec(0usize..10, 1..60)) {
        let mut c = IterCounter::new(4);
        let mut prev = c.current();
        for t in targets {
            let now = c.observe(t);
            prop_assert!((1..=6).contains(&now));
            prop_assert!(now.abs_diff(prev) <= 1);
            prev = now;
        }
    }

    /// The iteration policy is monotone: fewer features never means fewer
    /// iterations.
    #[test]
    fn policy_monotone(f1 in 0usize..400, f2 in 0usize..400) {
        let p = IterPolicy::default_table();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(p.iterations_for(lo) >= p.iterations_for(hi));
    }
}
