//! Cross-crate consistency: the analytical models, the cycle-level
//! simulator, the M-DFG cost model and the dataset workloads must all agree
//! where they overlap.

use archytas_dataset::kitti_sequences;
use archytas_hw::{
    cholesky_latency, cholesky_timeline, simulate_window, window_cycles, AcceleratorConfig,
    FpgaPlatform, PowerModel, ResourceModel, HIGH_PERF, LOW_POWER,
};
use archytas_mdfg::{build_mdfg, schedule, HwBlockClass, ProblemShape};

#[test]
fn cycle_sim_matches_analytical_latency_on_real_workloads() {
    let data = kitti_sequences()[1].truncated(4.0).build();
    let config = AcceleratorConfig::new(12, 6, 24);
    for workload in data.window_workloads(10) {
        let shape = ProblemShape::from_workload(&workload);
        let sim = simulate_window(&shape, &config, 4);
        let model = window_cycles(&shape, &config, 4);
        assert!(
            (sim.total_cycles - model).abs() / model < 1e-9,
            "sim {} vs model {model}",
            sim.total_cycles
        );
    }
}

#[test]
fn cholesky_event_sim_bounded_by_closed_form() {
    for m in [30usize, 90, 150, 225] {
        for s in [1usize, 8, 34, 97] {
            if s > m {
                continue;
            }
            assert!(
                cholesky_timeline(m, s) <= cholesky_latency(m, s) + 1e-9,
                "m={m} s={s}"
            );
        }
    }
}

#[test]
fn schedule_covers_every_mdfg_node_on_real_shapes() {
    let data = kitti_sequences()[2].truncated(3.0).build();
    for workload in data.window_workloads(10).iter().take(5) {
        let shape = ProblemShape::from_workload(workload);
        let built = build_mdfg(&shape);
        let sched = schedule(&built);
        assert_eq!(
            sched.assignments.len(),
            built.nls.len() + built.marginalization.len()
        );
        assert!(sched.shared_blocks.contains(&HwBlockClass::DTypeSchur));
        // The blocking decision stays D-type across real workloads.
        assert_eq!(built.nls_blocking.p, shape.features);
    }
}

#[test]
fn named_designs_dominate_each_other_consistently() {
    // High-Perf must be faster everywhere; Low-Power must use less power —
    // across the entire workload range of a real sequence.
    let data = kitti_sequences()[0].truncated(5.0).build();
    let power = PowerModel::zc706();
    assert!(power.power_w(&HIGH_PERF) > power.power_w(&LOW_POWER));
    for workload in data.window_workloads(10) {
        let shape = ProblemShape::from_workload(&workload);
        let hp = window_cycles(&shape, &HIGH_PERF, 6);
        let lp = window_cycles(&shape, &LOW_POWER, 6);
        assert!(hp < lp, "HP {hp} !< LP {lp} on {shape:?}");
    }
}

#[test]
fn resource_model_consistent_with_all_platforms() {
    let model = ResourceModel::calibrated();
    let zc706 = FpgaPlatform::zc706();
    let virtex = FpgaPlatform::virtex7_690t();
    // Everything that fits the ZC706 fits the Virtex-7.
    for nd in [1usize, 10, 28] {
        for nm in [1usize, 8, 19] {
            for s in [1usize, 34, 97] {
                let c = AcceleratorConfig::new(nd, nm, s);
                if model.fits(&c, &zc706) {
                    assert!(model.fits(&c, &virtex), "{c:?}");
                }
            }
        }
    }
}
