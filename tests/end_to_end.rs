//! End-to-end integration: algorithm description → generated accelerator →
//! on-vehicle execution on a synthetic sequence, checked against the CPU
//! baseline.

use archytas_baselines::CpuPlatform;
use archytas_core::{
    run_sequence, AlgorithmDescription, Archytas, DesignSpec, Executor, IterPolicy, RuntimeSystem,
    ITER_CAP,
};
use archytas_dataset::{euroc_sequences, kitti_sequences};
use archytas_hw::{AcceleratorModel, FpgaPlatform, HIGH_PERF};
use archytas_mdfg::ProblemShape;

#[test]
fn generate_then_drive_kitti() {
    // Generate an accelerator for the SLAM description.
    let spec = DesignSpec::zc706_power_optimal(4.0);
    let acc =
        Archytas::generate(&AlgorithmDescription::slam_typical(), &spec).expect("feasible design");
    assert!(acc.verilog.structural_check().is_clean());

    // Drive a short KITTI-like sequence through it.
    let data = kitti_sequences()[3].truncated(4.0).build();
    let mut exec = Executor::Accelerator {
        model: AcceleratorModel::new(acc.design.config, FpgaPlatform::zc706()),
        runtime: None,
    };
    let run = run_sequence(&data, &mut exec);
    assert!(!run.windows.is_empty());
    // Latency per window stays within the design constraint (the modelled
    // workload can only be easier than the spec's worst case).
    for w in &run.windows {
        assert!(
            w.latency_ms <= 4.0 + 1e-6,
            "window {} took {} ms",
            w.window_id,
            w.latency_ms
        );
    }
    // The estimator tracks ground truth.
    assert!(run.rmse_m < 1.0, "rmse {}", run.rmse_m);
}

#[test]
fn accelerator_beats_cpu_on_euroc() {
    let data = euroc_sequences()[0].truncated(4.0).build();

    let mut accel = Executor::Accelerator {
        model: AcceleratorModel::new(HIGH_PERF, FpgaPlatform::zc706()),
        runtime: None,
    };
    let accel_run = run_sequence(&data, &mut accel);

    let mut cpu = Executor::Cpu {
        platform: CpuPlatform::intel_comet_lake(),
        iterations: ITER_CAP,
    };
    let cpu_run = run_sequence(&data, &mut cpu);

    let speedup = cpu_run.total_time_ms / accel_run.total_time_ms;
    let energy = cpu_run.total_energy_mj / accel_run.total_energy_mj;
    assert!(speedup > 3.0, "speedup {speedup:.1}");
    assert!(energy > 20.0, "energy reduction {energy:.1}");
    // Single-precision datapath tracks the double-precision estimate.
    assert!(
        (accel_run.rmse_m - cpu_run.rmse_m).abs() < 0.05,
        "accel {} vs cpu {}",
        accel_run.rmse_m,
        cpu_run.rmse_m
    );
}

#[test]
fn dynamic_runtime_saves_energy_end_to_end() {
    let data = kitti_sequences()[5].truncated(4.0).build();
    let platform = FpgaPlatform::zc706();

    let run = |dynamic: bool| {
        let runtime = dynamic.then(|| {
            RuntimeSystem::new(
                HIGH_PERF,
                &ProblemShape::typical(),
                2.5,
                &platform,
                IterPolicy::default_table(),
            )
        });
        let mut exec = Executor::Accelerator {
            model: AcceleratorModel::new(HIGH_PERF, platform.clone()),
            runtime,
        };
        run_sequence(&data, &mut exec)
    };
    let static_run = run(false);
    let dynamic_run = run(true);
    assert!(dynamic_run.total_energy_mj < static_run.total_energy_mj);
    assert!(dynamic_run.rmse_m < static_run.rmse_m + 0.05);
    // The runtime may only ever reduce per-window iterations below the cap.
    assert!(dynamic_run.windows.iter().all(|w| w.iterations <= ITER_CAP));
}

#[test]
fn non_slam_algorithms_generate_and_fit() {
    for desc in [
        AlgorithmDescription::curve_fitting(),
        AlgorithmDescription::pose_estimation(),
    ] {
        let spec = DesignSpec::zc706_power_optimal(2.0);
        let acc = Archytas::generate(&desc, &spec).expect("feasible");
        assert!(acc.design.resources.fits(&FpgaPlatform::zc706().capacity));
        assert!(acc.design.latency_ms <= 2.0);
        assert!(acc.verilog.structural_check().is_clean());
    }
}
